package protomodel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isEventExpr reports whether e denotes the current message's type:
// the EventField selector on the message struct. Other event-typed
// values (saved request types, local temporaries) stay symbolic.
func (w *walker) isEventExpr(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != w.me.cfg.EventField {
		return false
	}
	named := namedOf(w.info().TypeOf(sel.X))
	return named != nil && named.Obj().Name() == w.me.cfg.EventStruct &&
		named.Obj().Pkg() == w.me.x.pkg.Types
}

// isStateExpr reports whether e reads the machine's state field.
func (w *walker) isStateExpr(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != w.me.cfg.StateField {
		return false
	}
	return types.Identical(w.info().TypeOf(e), w.me.states.typ)
}

// isKindExpr reports whether e reads the transient kind field of the
// busy transaction struct.
func (w *walker) isKindExpr(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != w.me.cfg.Busy.KindField {
		return false
	}
	return w.me.kinds != nil && types.Identical(w.info().TypeOf(e), w.me.kinds.typ)
}

// enumConst resolves a constant expression of the enum to its display
// name.
func (w *walker) enumConst(e ast.Expr, enum *enumInfo) (string, bool) {
	tv, ok := w.info().Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || !types.Identical(tv.Type, enum.typ) {
		return "", false
	}
	v, ok := exactInt(tv.Value.ExactString())
	if !ok {
		return "", false
	}
	return enum.nameOf(v)
}

func (w *walker) eventConst(e ast.Expr) (string, bool) {
	return w.enumConst(e, w.me.events)
}

// isEntryNil classifies a `X == nil` / `X != nil` comparison where X
// is the machine's entry type (a directory entry or cache line): nil
// means the Invalid state.
func (w *walker) isEntryNil(a, b ast.Expr) (ast.Expr, bool) {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && w.info().Types[e].IsNil()
	}
	var x ast.Expr
	switch {
	case isNil(b):
		x = a
	case isNil(a):
		x = b
	default:
		return nil, false
	}
	cfg := w.me.cfg
	if cfg.EntryType == "" {
		return nil, false
	}
	t := w.info().TypeOf(x)
	if _, ok := t.(*types.Pointer); !ok {
		return nil, false
	}
	named := namedOf(t)
	if named == nil || named.Obj().Name() != cfg.EntryType {
		return nil, false
	}
	if cfg.EntryTypePkg == "" {
		return x, named.Obj().Pkg() == w.me.x.pkg.Types
	}
	return x, named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == cfg.EntryTypePkg
}

// evalCond evaluates a boolean condition against the context. truth is
// +1 (always true here), -1 (always false) or 0 (unknown); nThen and
// nElse are the refinements the two branches may apply.
func (w *walker) evalCond(e ast.Expr, c *ctx) (truth int, nThen, nElse narrow) {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			t, a, b := w.evalCond(e.X, c)
			return -t, b, a
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			ta, aT, aE := w.evalCond(e.X, c)
			tb, bT, bE := w.evalCond(e.Y, c)
			t := 0
			if ta == -1 || tb == -1 {
				t = -1
			} else if ta == 1 && tb == 1 {
				t = 1
			}
			return t, andNarrow(aT, bT), orNarrow(aE, bE)
		case token.LOR:
			ta, aT, aE := w.evalCond(e.X, c)
			tb, bT, bE := w.evalCond(e.Y, c)
			t := 0
			if ta == 1 || tb == 1 {
				t = 1
			} else if ta == -1 && tb == -1 {
				t = -1
			}
			return t, orNarrow(aT, bT), andNarrow(aE, bE)
		case token.EQL, token.NEQ:
			truth, nThen, nElse = w.evalCompare(e, c)
			if e.Op == token.NEQ {
				return -truth, nElse, nThen
			}
			return truth, nThen, nElse
		}
	case *ast.Ident:
		// A type-assert ok variable: true confirms the asserted event.
		if v, ok := c.vars[w.info().ObjectOf(e)]; ok {
			if ev, isOk := strings.CutPrefix(v, "ok:"); isOk {
				return 0, narrow{event: ev}, narrow{}
			}
		}
	}
	return 0, narrow{}, narrow{}
}

// evalCompare handles `X == Y` over the dimensions the model tracks.
func (w *walker) evalCompare(e *ast.BinaryExpr, c *ctx) (truth int, nThen, nElse narrow) {
	me := w.me

	// Entry-pointer nil comparison: nil is the Invalid state.
	if _, ok := w.isEntryNil(e.X, e.Y); ok {
		nThen = narrow{states: []string{me.cfg.Invalid}}
		if me.cfg.NotNilExcludesInvalid {
			nElse = narrow{states: subtract(me.stable, []string{me.cfg.Invalid})}
		}
		return 0, nThen, nElse
	}

	classify := func(a, b ast.Expr) (truth int, nT, nE narrow, ok bool) {
		// State field vs state constant.
		if w.isStateExpr(a) {
			if name, isConst := w.enumConst(b, me.states); isConst {
				return w.stateCompare(c, name, me.stable)
			}
		}
		// Kind field vs kind constant.
		if me.kinds != nil && w.isKindExpr(a) {
			if name, isConst := w.enumConst(b, me.kinds); isConst {
				return w.stateCompare(c, me.cfg.Busy.Prefix+name, me.busyNames)
			}
		}
		// Current event vs event constant.
		if w.isEventExpr(a) {
			if ev, isConst := w.eventConst(b); isConst {
				if c.event != "" {
					if c.event == ev {
						return 1, narrow{}, narrow{}, true
					}
					return -1, narrow{}, narrow{}, true
				}
				return 0, narrow{event: ev}, narrow{}, true
			}
		}
		// Tracked local variable vs state constant.
		if obj, tracked := varOf(w, a); obj != nil {
			if name, isConst := w.enumConst(b, me.states); isConst {
				if tracked {
					if v := c.vars[obj]; v != "" && !strings.HasPrefix(v, "ok:") {
						if v == name {
							return 1, narrow{}, narrow{}, true
						}
						return -1, narrow{}, narrow{}, true
					}
				}
				return 0, narrow{vars: map[types.Object]string{obj: name}}, narrow{}, true
			}
		}
		return 0, narrow{}, narrow{}, false
	}
	if t, nT, nE, ok := classify(e.X, e.Y); ok {
		return t, nT, nE
	}
	if t, nT, nE, ok := classify(e.Y, e.X); ok {
		return t, nT, nE
	}
	return 0, narrow{}, narrow{}
}

// varOf resolves an identifier of the state enum type.
func varOf(w *walker, e ast.Expr) (types.Object, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := w.info().ObjectOf(id)
	if obj == nil || !types.Identical(obj.Type(), w.me.states.typ) {
		return nil, false
	}
	return obj, true
}

// stateCompare evaluates `state-dimension == name` against the
// context's state set.
func (w *walker) stateCompare(c *ctx, name string, universe []string) (truth int, nThen, nElse narrow, ok bool) {
	nThen = narrow{states: []string{name}}
	nElse = narrow{states: subtract(universe, []string{name})}
	if c.states != nil {
		all, none := true, true
		for _, s := range c.states {
			if s == name {
				none = false
			} else {
				all = false
			}
		}
		// Only decide when the context stays within this dimension's
		// universe; a mixed set (stable + busy) keeps the comparison
		// open.
		inUniverse := true
		for _, s := range c.states {
			found := false
			for _, u := range universe {
				if s == u {
					found = true
					break
				}
			}
			if !found {
				inUniverse = false
				break
			}
		}
		if inUniverse {
			if all {
				return 1, nThen, nElse, true
			}
			if none {
				return -1, nThen, nElse, true
			}
		}
	}
	return 0, nThen, nElse, true
}
