// Package protomodel statically extracts the coherence-protocol state
// machines from the Go sources of internal/coherence and checks them
// against the checked-in machine-readable specification under spec/.
//
// The extractor (see extract.go) walks the controller entry points with
// go/ast + go/types, narrowing a (state, event) context through enum
// switches and comparisons, and records every observable transition
// `(state, event) -> next` together with its file:line provenance. The
// result is a Model: a canonical, deterministic transition table for
// the directory FSM (stable DI/DS/DO/DW states plus the transient
// busy:<txn> states) and the private-cache FSM (I/S/E/M/W).
//
// Where extraction cannot see a transition (core-issued events, ack
// paths whose next state is the transaction's underlying stable state)
// the coherence sources carry small `//proto:` annotation comments; the
// annotation's own position becomes the transition's provenance, so
// every row of the model still points into the implementation.
package protomodel

import (
	"fmt"
	"sort"
	"strings"
)

// Transition is one extracted `(from, event) -> next` arm.
type Transition struct {
	Machine string
	From    string // state name, or "*" (any stable state)
	Event   string
	Next    string // state name, or "error" (protocol error by design)
	Pos     string // module-relative file:line provenance
	Source  string // "code", "annot" (explicit annotation) or "self" (synthesized self-loop)
}

// Key returns the identity of the transition (provenance excluded).
func (t Transition) Key() string {
	return t.Machine + "\x00" + t.From + "\x00" + t.Event + "\x00" + t.Next
}

// Pair records that the extractor proved a concrete (state, event)
// combination is handled, even if no state change was observed there.
type Pair struct {
	Machine string
	State   string
	Event   string
	Pos     string
}

// Machine is the extracted model of one finite-state machine.
type Machine struct {
	Name        string
	States      []string // stable states in enum order, then transient states
	Stable      []string // stable states only, in enum order
	Events      []string // wire events, then wireless payload events, then annotation-only events
	WireEvents  []string // the message-type enum members only
	Transitions []Transition
	Pairs       []Pair
}

// Model is the full extracted protocol model.
type Model struct {
	Machines []*Machine
}

// Machine returns the named machine, or nil.
func (m *Model) Machine(name string) *Machine {
	for _, mc := range m.Machines {
		if mc.Name == name {
			return mc
		}
	}
	return nil
}

// Covered reports whether the machine handles the (state, event) pair:
// either a transition (concrete or from "*") or a proven handled pair.
func (mc *Machine) Covered(state, event string) bool {
	for _, t := range mc.Transitions {
		if t.Event == event && (t.From == state || t.From == "*") {
			return true
		}
	}
	for _, p := range mc.Pairs {
		if p.State == state && p.Event == event {
			return true
		}
	}
	return false
}

// Lookup returns the transitions out of (from, event), "*" included.
func (mc *Machine) Lookup(from, event string) []Transition {
	var out []Transition
	for _, t := range mc.Transitions {
		if t.Event == event && (t.From == from || t.From == "*") {
			out = append(out, t)
		}
	}
	return out
}

// finalize sorts everything canonically and synthesizes self-loop
// transitions for handled pairs that produced no state change: a pair
// the walker proved reachable with no assignment leaves the state
// unchanged.
func (mc *Machine) finalize() {
	byKey := map[string]bool{}
	hasFact := map[string]bool{} // from\x00event and *\x00event seen
	for _, t := range mc.Transitions {
		byKey[t.Key()] = true
		hasFact[t.From+"\x00"+t.Event] = true
	}
	for _, p := range mc.Pairs {
		if hasFact[p.State+"\x00"+p.Event] || hasFact["*\x00"+p.Event] {
			continue
		}
		t := Transition{Machine: mc.Name, From: p.State, Event: p.Event,
			Next: p.State, Pos: p.Pos, Source: "self"}
		if !byKey[t.Key()] {
			byKey[t.Key()] = true
			mc.Transitions = append(mc.Transitions, t)
		}
	}
	order := func(s string) string { return s } // lexical; busy: sorts after caps
	sort.Slice(mc.Transitions, func(i, j int) bool {
		a, b := mc.Transitions[i], mc.Transitions[j]
		if a.From != b.From {
			return order(a.From) < order(b.From)
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return a.Next < b.Next
	})
	sort.Slice(mc.Pairs, func(i, j int) bool {
		a, b := mc.Pairs[i], mc.Pairs[j]
		if a.State != b.State {
			return a.State < b.State
		}
		return a.Event < b.Event
	})
}

// Text renders the machine as an aligned transition table.
func (mc *Machine) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s: %d states, %d events, %d transitions\n",
		mc.Name, len(mc.States), len(mc.Events), len(mc.Transitions))
	wf, we, wn := 4, 5, 4
	for _, t := range mc.Transitions {
		wf, we, wn = max(wf, len(t.From)), max(we, len(t.Event)), max(wn, len(t.Next))
	}
	for _, t := range mc.Transitions {
		tag := ""
		if t.Source != "code" {
			tag = " (" + t.Source + ")"
		}
		fmt.Fprintf(&b, "  %-*s %-*s -> %-*s  %s%s\n", wf, t.From, we, t.Event, wn, t.Next, t.Pos, tag)
	}
	return b.String()
}

// Text renders the whole model.
func (m *Model) Text() string {
	var b strings.Builder
	for i, mc := range m.Machines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(mc.Text())
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
