package protomodel

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the machine as a Graphviz digraph. Stable states are
// boxes, transient (busy) states are ellipses, the synthetic error
// sink is a red octagon. Output is byte-deterministic regardless of
// the order Transitions arrive in: nodes render sorted lexically,
// merged edges sort by (from, next), and each edge's event labels are
// deduplicated and sorted.
func (mc *Machine) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", mc.Name)
	b.WriteString("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	used := map[string]bool{}
	for _, t := range mc.Transitions {
		used[t.From] = true
		used[t.Next] = true
	}
	stable := map[string]bool{}
	for _, s := range mc.Stable {
		stable[s] = true
	}
	var nodes []string
	for _, s := range mc.States {
		if used[s] {
			nodes = append(nodes, s)
		}
	}
	sort.Strings(nodes)
	for _, s := range nodes {
		shape := "ellipse"
		if stable[s] {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", s, shape)
	}
	if used["error"] {
		b.WriteString("  \"error\" [shape=octagon, color=red];\n")
	}
	if used["*"] {
		b.WriteString("  \"*\" [shape=diamond, style=dashed];\n")
	}
	// Merge parallel edges into one label per (from, next) pair to keep
	// the graph readable.
	type edge struct{ from, next string }
	labels := map[edge][]string{}
	for _, t := range mc.Transitions {
		e := edge{t.From, t.Next}
		labels[e] = append(labels[e], t.Event)
	}
	order := make([]edge, 0, len(labels))
	for e := range labels {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].from != order[j].from {
			return order[i].from < order[j].from
		}
		return order[i].next < order[j].next
	})
	for _, e := range order {
		evs := labels[e]
		sort.Strings(evs)
		evs = dedupSorted(evs)
		style := ""
		if e.next == "error" {
			style = ", color=red"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.from, e.next,
			strings.Join(evs, "\\n"), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// dedupSorted removes adjacent duplicates from a sorted slice.
func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Dot renders every machine, one digraph after another (Graphviz
// accepts multi-graph input; `dot -Tsvg` renders the first, split the
// output per machine with -machine for one graph per file).
func (m *Model) Dot() string {
	var b strings.Builder
	for i, mc := range m.Machines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(mc.Dot())
	}
	return b.String()
}
