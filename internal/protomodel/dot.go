package protomodel

import (
	"fmt"
	"strings"
)

// Dot renders the machine as a Graphviz digraph. Stable states are
// boxes, transient (busy) states are ellipses, the synthetic error
// sink is a red octagon. Output is deterministic: transitions are
// already canonically sorted by finalize.
func (mc *Machine) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", mc.Name)
	b.WriteString("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	used := map[string]bool{}
	for _, t := range mc.Transitions {
		used[t.From] = true
		used[t.Next] = true
	}
	stable := map[string]bool{}
	for _, s := range mc.Stable {
		stable[s] = true
	}
	for _, s := range mc.States {
		if !used[s] {
			continue
		}
		shape := "ellipse"
		if stable[s] {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", s, shape)
	}
	if used["error"] {
		b.WriteString("  \"error\" [shape=octagon, color=red];\n")
	}
	if used["*"] {
		b.WriteString("  \"*\" [shape=diamond, style=dashed];\n")
	}
	// Merge parallel edges into one label per (from, next) pair to keep
	// the graph readable.
	type edge struct{ from, next string }
	var order []edge
	labels := map[edge][]string{}
	for _, t := range mc.Transitions {
		e := edge{t.From, t.Next}
		if _, ok := labels[e]; !ok {
			order = append(order, e)
		}
		labels[e] = append(labels[e], t.Event)
	}
	for _, e := range order {
		style := ""
		if e.next == "error" {
			style = ", color=red"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.from, e.next,
			strings.Join(labels[e], "\\n"), style)
	}
	b.WriteString("}\n")
	return b.String()
}

// Dot renders every machine, one digraph after another (Graphviz
// accepts multi-graph input; `dot -Tsvg` renders the first, split the
// output per machine with -machine for one graph per file).
func (m *Model) Dot() string {
	var b strings.Builder
	for i, mc := range m.Machines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(mc.Dot())
	}
	return b.String()
}
