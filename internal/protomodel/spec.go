package protomodel

import (
	"bufio"
	"embed"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

//go:embed spec/*.widirspec
var embeddedSpec embed.FS

// SpecRow is one specified transition arm.
type SpecRow struct {
	From  string // state name or "*"
	Event string
	Next  string // state name or "error"
	Pos   string // spec file:line, for diagnostics
}

// Spec is the machine-readable protocol specification: the set of
// transition arms each machine is required (and allowed) to implement.
type Spec struct {
	Machines map[string][]SpecRow
}

// EmbeddedSpec parses the spec compiled into the binary from
// internal/protomodel/spec/.
func EmbeddedSpec() (*Spec, error) {
	return loadSpecFS(embeddedSpec, "spec")
}

// LoadSpecDir parses every *.widirspec file in dir.
func LoadSpecDir(dir string) (*Spec, error) {
	return loadSpecFS(os.DirFS(dir), ".")
}

func loadSpecFS(fsys fs.FS, root string) (*Spec, error) {
	entries, err := fs.ReadDir(fsys, root)
	if err != nil {
		return nil, fmt.Errorf("reading spec dir: %w", err)
	}
	spec := &Spec{Machines: map[string][]SpecRow{}}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".widirspec") {
			continue
		}
		f, err := fsys.Open(filepath.ToSlash(filepath.Join(root, e.Name())))
		if err != nil {
			return nil, err
		}
		err = parseSpec(spec, e.Name(), f)
		f.Close()
		if err != nil {
			return nil, err
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("no *.widirspec files found")
	}
	return spec, nil
}

// parseSpec reads one spec file. Format, line-oriented:
//
//	# comment
//	machine <name>
//	<from> <event> -> <next>
//
// A `machine` line opens a section; transition lines belong to the
// most recent section. Blank lines and #-comments are ignored.
func parseSpec(spec *Spec, name string, r fs.File) error {
	sc := bufio.NewScanner(r)
	machine := ""
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "machine" {
			if len(fields) != 2 {
				return fmt.Errorf("%s:%d: malformed machine line %q", name, lineno, line)
			}
			machine = fields[1]
			if _, dup := spec.Machines[machine]; !dup {
				spec.Machines[machine] = nil
			}
			continue
		}
		if machine == "" {
			return fmt.Errorf("%s:%d: transition before any machine line", name, lineno)
		}
		if len(fields) != 4 || fields[2] != "->" {
			return fmt.Errorf("%s:%d: malformed transition %q (want: <from> <event> -> <next>)", name, lineno, line)
		}
		spec.Machines[machine] = append(spec.Machines[machine], SpecRow{
			From: fields[0], Event: fields[1], Next: fields[3],
			Pos: fmt.Sprintf("%s:%d", name, lineno),
		})
	}
	return sc.Err()
}

// Finding is one conformance divergence between implementation and
// spec.
type Finding struct {
	Kind    string // "unspecified", "unimplemented", "uncovered"
	Machine string
	Detail  string
	Pos     string // impl or spec provenance
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s", f.Pos, f.Machine, f.Kind, f.Detail)
}

// Check diffs the extracted model against the spec and reports:
//
//   - unspecified: a transition the implementation performs that the
//     spec does not allow;
//   - unimplemented: a spec transition with no implementing code;
//   - uncovered: a (stable state, protocol event) pair the
//     implementation does not handle at all — a non-exhaustive arm in
//     one of the controller switches.
func Check(model *Model, spec *Spec) []Finding {
	var out []Finding
	for _, mc := range model.Machines {
		rows, ok := spec.Machines[mc.Name]
		if !ok {
			out = append(out, Finding{Kind: "unimplemented", Machine: mc.Name,
				Detail: "machine missing from spec", Pos: "spec"})
			continue
		}
		specSet := map[string]SpecRow{}
		for _, r := range rows {
			specSet[r.From+"\x00"+r.Event+"\x00"+r.Next] = r
		}

		// (a) implemented but not specified.
		for _, t := range mc.Transitions {
			if _, ok := specSet[t.From+"\x00"+t.Event+"\x00"+t.Next]; !ok {
				out = append(out, Finding{Kind: "unspecified", Machine: mc.Name,
					Detail: fmt.Sprintf("%s %s -> %s", t.From, t.Event, t.Next), Pos: t.Pos})
			}
		}

		// (b) specified but not implemented.
		implSet := map[string]bool{}
		for _, t := range mc.Transitions {
			implSet[t.From+"\x00"+t.Event+"\x00"+t.Next] = true
		}
		for _, r := range rows {
			if !implSet[r.From+"\x00"+r.Event+"\x00"+r.Next] {
				out = append(out, Finding{Kind: "unimplemented", Machine: mc.Name,
					Detail: fmt.Sprintf("%s %s -> %s", r.From, r.Event, r.Next), Pos: r.Pos})
			}
		}

		// (c) non-exhaustive handling: every stable state must handle
		// every wire (message-type enum) event somehow — a transition,
		// a "*" arm, an error arm, or a proven no-op pair.
		for _, ev := range mc.WireEvents {
			for _, st := range mc.Stable {
				if !mc.Covered(st, ev) {
					out = append(out, Finding{Kind: "uncovered", Machine: mc.Name,
						Detail: fmt.Sprintf("state %s does not handle event %s", st, ev),
						Pos:    "impl"})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return a.Pos < b.Pos
	})
	return out
}
