package protomodel

import (
	"fmt"
	"sort"
	"strings"
)

// ModelFromSpec builds a Model directly from a parsed specification, so
// tools that consume transition relations (the mcheck explorer, tests
// that seed deliberate spec mutations) can run against the spec tables
// without a live extraction. Each spec row becomes one Transition with
// Source "spec" and the spec file:line as provenance; states and events
// are collected from the rows themselves.
func ModelFromSpec(spec *Spec) *Model {
	names := make([]string, 0, len(spec.Machines))
	for name := range spec.Machines {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &Model{}
	for _, name := range names {
		mc := &Machine{Name: name}
		states := map[string]bool{}
		events := map[string]bool{}
		for _, r := range spec.Machines[name] {
			mc.Transitions = append(mc.Transitions, Transition{
				Machine: name, From: r.From, Event: r.Event, Next: r.Next,
				Pos: r.Pos, Source: "spec",
			})
			for _, s := range []string{r.From, r.Next} {
				if s != "*" && s != "error" {
					states[s] = true
				}
			}
			events[r.Event] = true
		}
		for s := range states {
			mc.States = append(mc.States, s)
			if !strings.HasPrefix(s, "busy:") {
				mc.Stable = append(mc.Stable, s)
			}
		}
		for e := range events {
			mc.Events = append(mc.Events, e)
		}
		sort.Strings(mc.States)
		sort.Strings(mc.Stable)
		sort.Strings(mc.Events)
		mc.finalize()
		m.Machines = append(m.Machines, mc)
	}
	return m
}

// Canonical renders the spec in its canonical serialized form: machines
// sorted by name, one `machine <name>` header each, rows sorted by
// (from, event, next) with single-space separators and a trailing
// newline. Parsing the output reproduces the same spec, and
// re-serializing is byte-identical (the round-trip test asserts the
// fixpoint), so canonical forms can be diffed and hashed.
func (s *Spec) Canonical() string {
	names := make([]string, 0, len(s.Machines))
	for name := range s.Machines {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "machine %s\n", name)
		rows := append([]SpecRow(nil), s.Machines[name]...)
		sort.Slice(rows, func(i, j int) bool {
			a, c := rows[i], rows[j]
			if a.From != c.From {
				return a.From < c.From
			}
			if a.Event != c.Event {
				return a.Event < c.Event
			}
			return a.Next < c.Next
		})
		for _, r := range rows {
			fmt.Fprintf(&b, "%s %s -> %s\n", r.From, r.Event, r.Next)
		}
	}
	return b.String()
}
