package protomodel

import (
	"strings"
	"testing"
	"testing/fstest"
)

// TestSpecCanonicalRoundTrip checks the serializer fixpoint: the
// canonical rendering of the embedded spec parses back to the same
// spec, and re-serializing is byte-identical. Comments and row order
// in the source files are the only information canonicalization drops.
func TestSpecCanonicalRoundTrip(t *testing.T) {
	spec, err := EmbeddedSpec()
	if err != nil {
		t.Fatalf("embedded spec: %v", err)
	}
	first := spec.Canonical()
	reparsed, err := loadSpecFS(fstest.MapFS{
		"spec/all.widirspec": {Data: []byte(first)},
	}, "spec")
	if err != nil {
		t.Fatalf("re-parsing canonical form: %v", err)
	}
	second := reparsed.Canonical()
	if first != second {
		t.Errorf("canonical form is not a serializer fixpoint:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// No rows gained or lost: same multiset per machine.
	for name, rows := range spec.Machines {
		if got, want := len(reparsed.Machines[name]), len(rows); got != want {
			t.Errorf("machine %s: %d rows after round trip, want %d", name, got, want)
		}
	}
	for _, want := range []string{"machine dir\n", "machine l1\n", "DW WirUpd -> DW\n"} {
		if !strings.Contains(first, want) {
			t.Errorf("canonical form missing %q", want)
		}
	}
}

// TestSpecMalformedPositions pins the file:line positions in spec
// parse errors.
func TestSpecMalformedPositions(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"badrow", "machine dir\n\nDI GetS DO\n", "bad.widirspec:3: malformed transition"},
		{"badmachine", "# c\nmachine a b\n", "bad.widirspec:2: malformed machine line"},
		{"norow", "DI GetS -> DO\n", "bad.widirspec:1: transition before any machine line"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := loadSpecFS(fstest.MapFS{
				"spec/bad.widirspec": {Data: []byte(c.src)},
			}, "spec")
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %v, want containing %q", err, c.wantErr)
			}
		})
	}
}

// TestModelFromSpecAgreesWithSpec builds the relation straight from the
// embedded spec and diffs it against that same spec: every row must
// survive in both directions.
func TestModelFromSpecAgreesWithSpec(t *testing.T) {
	spec, err := EmbeddedSpec()
	if err != nil {
		t.Fatalf("embedded spec: %v", err)
	}
	model := ModelFromSpec(spec)
	if model.Machine("dir") == nil || model.Machine("l1") == nil {
		t.Fatal("spec-derived model missing dir or l1 machine")
	}
	for _, f := range Check(model, spec) {
		t.Errorf("spec-derived model diverges from spec: %s", f)
	}
	// Lookup works through the spec-derived relation, including "*" arms.
	dir := model.Machine("dir")
	if len(dir.Lookup("DW", "WirUpd")) == 0 {
		t.Error("dir DW WirUpd not found in spec-derived relation")
	}
}

// TestDotCanonicalOrder feeds a machine with deliberately scrambled,
// duplicated transitions and requires the canonical rendering: sorted
// nodes, (from, next)-sorted edges, deduplicated sorted labels.
func TestDotCanonicalOrder(t *testing.T) {
	scrambled := &Machine{
		Name:   "toy",
		States: []string{"B", "A"},
		Stable: []string{"A", "B"},
		Transitions: []Transition{
			{From: "B", Event: "y", Next: "A"},
			{From: "A", Event: "z", Next: "B"},
			{From: "A", Event: "x", Next: "B"},
			{From: "A", Event: "x", Next: "B"}, // duplicate label
			{From: "B", Event: "w", Next: "error"},
		},
	}
	got := scrambled.Dot()
	wantOrder := []string{
		`"A" [shape=box]`,
		`"B" [shape=box]`,
		`"error" [shape=octagon`,
		`"A" -> "B" [label="x\\nz"]`,
		`"B" -> "A" [label="y"]`,
		`"B" -> "error" [label="w", color=red]`,
	}
	last := -1
	for _, frag := range wantOrder {
		i := strings.Index(got, frag)
		if i < 0 {
			t.Fatalf("dot output missing %q:\n%s", frag, got)
		}
		if i < last {
			t.Errorf("dot fragment %q out of canonical order:\n%s", frag, got)
		}
		last = i
	}
	// Reversing the transition slice must not change a byte.
	rev := &Machine{Name: "toy", States: scrambled.States, Stable: scrambled.Stable}
	for i := len(scrambled.Transitions) - 1; i >= 0; i-- {
		rev.Transitions = append(rev.Transitions, scrambled.Transitions[i])
	}
	if rev.Dot() != got {
		t.Error("dot output depends on transition order")
	}
}
