package protomodel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func extractFixture(t *testing.T, name string) (*Model, *Spec) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(cwd, "testdata", name)
	model, err := Extract(moduleDir, dir, WiDirConfig())
	if err != nil {
		t.Fatalf("extracting %s: %v", name, err)
	}
	spec, err := LoadSpecDir(filepath.Join(dir, "spec"))
	if err != nil {
		t.Fatalf("loading %s spec: %v", name, err)
	}
	return model, spec
}

func TestConformantFixturePasses(t *testing.T) {
	model, spec := extractFixture(t, "conformant")
	if findings := Check(model, spec); len(findings) != 0 {
		for _, f := range findings {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestMissingArmFixtureFails seeds a protocol implementation with one
// transition arm removed (the directory's DO GetS -> DS downgrade) and
// requires the conformance check to flag both the unimplemented spec
// row and the fall-through self-loop that replaced it.
func TestMissingArmFixtureFails(t *testing.T) {
	model, spec := extractFixture(t, "missingarm")
	findings := Check(model, spec)
	if len(findings) == 0 {
		t.Fatal("missingarm fixture produced no findings")
	}
	var unimplemented, unspecified bool
	for _, f := range findings {
		switch {
		case f.Kind == "unimplemented" && f.Detail == "DO GetS -> DS":
			unimplemented = true
			if !strings.Contains(f.Pos, "dir.widirspec:") {
				t.Errorf("unimplemented finding should cite the spec line, got %q", f.Pos)
			}
		case f.Kind == "unspecified" && f.Detail == "DO GetS -> DO":
			unspecified = true
			if !strings.Contains(f.Pos, "missingarm.go:") {
				t.Errorf("unspecified finding should cite the implementation, got %q", f.Pos)
			}
		}
	}
	if !unimplemented {
		t.Errorf("missing the unimplemented DO GetS -> DS finding; got %v", findings)
	}
	if !unspecified {
		t.Errorf("missing the unspecified DO GetS -> DO finding; got %v", findings)
	}
}

func TestSpecParserRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ name, content, wantErr string }{
		{"bad-arrow", "machine dir\nDI GetS => DO\n", "malformed transition"},
		{"no-machine", "DI GetS -> DO\n", "before any machine"},
		{"bad-machine", "machine\n", "malformed machine"},
	}
	for _, c := range cases {
		path := filepath.Join(dir, "x.widirspec")
		if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadSpecDir(dir)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
	if err := os.Remove(filepath.Join(dir, "x.widirspec")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpecDir(dir); err == nil || !strings.Contains(err.Error(), "no *.widirspec") {
		t.Errorf("empty dir: err = %v, want no-files error", err)
	}
}

// TestAnnotationValidation rejects a proto:transition comment naming an
// unknown state.
func TestAnnotationValidation(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	src := `package fx

//proto:transition dir NoSuchState GetS -> DI
type DirState int

const (
	DirInvalid DirState = iota
	DirShared
	DirOwned
	DirWireless
)

type MsgType int

const MsgGetS MsgType = 0

type txnKind int

const txNone txnKind = 0

type txn struct{ kind txnKind }

type Msg struct{ Type MsgType }

type DirEntry struct {
	State DirState
	busy  *txn
}

type HomeCtrl struct{}

func (h *HomeCtrl) HandleWired(m *Msg) {}
`
	// The fixture must live inside the module so the loader can resolve
	// it; testdata/ keeps it invisible to the rest of the build.
	dir, err := os.MkdirTemp(filepath.Join(cwd, "testdata"), "annot")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := os.WriteFile(filepath.Join(dir, "fx.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := &Config{Machines: []*MachineCfg{WiDirConfig().Machines[0]}}
	_, err = Extract(moduleDir, dir, cfg)
	if err == nil || !strings.Contains(err.Error(), "unknown state") {
		t.Errorf("err = %v, want unknown-state annotation error", err)
	}
}
