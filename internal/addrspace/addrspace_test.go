package addrspace

import (
	"testing"
	"testing/quick"
)

func TestLineWordRoundTrip(t *testing.T) {
	if err := quick.Check(func(a Addr) bool {
		l := LineOf(a)
		w := WordOf(a)
		// The word's address lies within the line and selects the same word.
		wa := l.WordAddr(w)
		return LineOf(wa) == l && WordOf(wa) == w && wa <= a && a < wa+WordSize
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBase(t *testing.T) {
	if Line(3).Base() != 192 {
		t.Fatalf("base = %d", Line(3).Base())
	}
	if LineOf(191) != 2 || LineOf(192) != 3 {
		t.Fatal("LineOf boundary wrong")
	}
}

func TestWordOf(t *testing.T) {
	if WordOf(0) != 0 || WordOf(8) != 1 || WordOf(63) != 7 || WordOf(64) != 0 {
		t.Fatal("WordOf wrong")
	}
}

func TestHomeAndMCInRange(t *testing.T) {
	s := NewSpace(64, 4)
	if err := quick.Check(func(l Line) bool {
		h := s.HomeOf(l)
		m := s.MCOf(l)
		return h >= 0 && h < 64 && m >= 0 && m < 4
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHomeDeterministic(t *testing.T) {
	s := NewSpace(16, 2)
	for l := Line(0); l < 100; l++ {
		if s.HomeOf(l) != s.HomeOf(l) {
			t.Fatal("HomeOf not deterministic")
		}
	}
}

func TestHomeSpreads(t *testing.T) {
	s := NewSpace(64, 4)
	counts := make([]int, 64)
	for l := Line(0); l < 64*100; l++ {
		counts[s.HomeOf(l)]++
	}
	for n, c := range counts {
		if c == 0 {
			t.Fatalf("node %d received no lines", n)
		}
		if c < 50 || c > 200 {
			t.Fatalf("node %d badly imbalanced: %d lines", n, c)
		}
	}
}

func TestPowerOfTwoStrides(t *testing.T) {
	// A power-of-two stride must not collapse onto a few homes.
	s := NewSpace(64, 4)
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[s.HomeOf(Line(i*64))] = true
	}
	if len(seen) < 32 {
		t.Fatalf("stride-64 lines hit only %d homes", len(seen))
	}
}

func TestNewSpaceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid space did not panic")
		}
	}()
	NewSpace(0, 1)
}

func TestAccessors(t *testing.T) {
	s := NewSpace(8, 2)
	if s.Nodes() != 8 || s.MemControllers() != 2 {
		t.Fatal("accessors wrong")
	}
}
