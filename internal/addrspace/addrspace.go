// Package addrspace defines the simulator's physical address
// arithmetic: cache-line and word extraction, the mapping from a line
// address to its home LLC slice (the node holding its directory entry),
// and the interleaving of line addresses across memory controllers.
package addrspace

// LineSize is the cache line size in bytes (Table III: 64 B lines).
const LineSize = 64

// WordSize is the machine word size in bytes.
const WordSize = 8

// WordsPerLine is the number of 8-byte words in a line.
const WordsPerLine = LineSize / WordSize

// Addr is a byte-granular physical address.
type Addr uint64

// Line is a line-granular address: Addr >> log2(LineSize).
type Line uint64

// LineOf returns the line containing a.
func LineOf(a Addr) Line { return Line(a / LineSize) }

// WordOf returns the word index (0..7) of a within its line.
func WordOf(a Addr) int { return int(a % LineSize / WordSize) }

// Base returns the first byte address of the line.
func (l Line) Base() Addr { return Addr(l) * LineSize }

// WordAddr returns the byte address of word w in the line.
func (l Line) WordAddr(w int) Addr { return l.Base() + Addr(w*WordSize) }

// Space maps lines to home directory slices and memory controllers for
// a machine with a fixed node count.
type Space struct {
	nodes int
	mcs   int
}

// NewSpace returns a Space for a machine with the given node and memory
// controller counts. Both must be positive.
func NewSpace(nodes, mcs int) *Space {
	if nodes <= 0 || mcs <= 0 {
		panic("addrspace: node and MC counts must be positive")
	}
	return &Space{nodes: nodes, mcs: mcs}
}

// Nodes returns the node count.
func (s *Space) Nodes() int { return s.nodes }

// MemControllers returns the memory controller count.
func (s *Space) MemControllers() int { return s.mcs }

// HomeOf returns the node whose LLC slice holds the directory entry and
// data for the line. Lines are hash-interleaved across slices so that a
// dense region spreads over all nodes; the multiplicative mix avoids
// pathological striding when workloads use power-of-two strides.
func (s *Space) HomeOf(l Line) int {
	return int(mix(uint64(l)) % uint64(s.nodes))
}

// MCOf returns the memory controller serving the line on an LLC miss.
func (s *Space) MCOf(l Line) int {
	return int(mix(uint64(l)>>1) % uint64(s.mcs))
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
