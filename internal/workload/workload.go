// Package workload synthesizes the memory reference streams the
// evaluation runs. Each SPLASH-3/PARSEC application of Table IV is
// represented by a Profile describing its measured sharing behaviour —
// target miss rate, the degree and write intensity of data sharing, and
// its lock/barrier density — and a generator turns a profile into one
// reactive instruction stream per core. Synchronization is real: locks
// are spin test-and-set RMWs and barriers are sense-reversing counters,
// so the highly-shared lines the paper's Figure 5 attributes to locks
// and barriers emerge from execution rather than being injected.
package workload

import (
	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/xrand"
)

// Address map regions. Each region is generously sized so lines never
// collide across regions.
const (
	regionSync    addrspace.Addr = 0x0000_0000 // locks, barriers
	regionHot     addrspace.Addr = 0x0100_0000 // highly shared data
	regionMid     addrspace.Addr = 0x0200_0000 // group-shared data
	regionMig     addrspace.Addr = 0x0300_0000 // migratory data
	regionPipe    addrspace.Addr = 0x0400_0000 // pipeline stage queues
	regionPrivate addrspace.Addr = 0x1000_0000 // per-core, 16 MB stride
	privateStride addrspace.Addr = 0x0100_0000
)

// Profile describes one application's synthesized behaviour.
type Profile struct {
	Name string

	// PaperMPKI is the paper's measured Baseline L1 MPKI (Table IV),
	// recorded for reporting and used to calibrate the private stream.
	PaperMPKI float64

	// Steps is the number of generator steps per core (each step is one
	// memory access plus ComputePerMem compute instructions), before
	// synchronization overhead.
	Steps int

	// ComputePerMem sets the compute:memory instruction ratio.
	ComputePerMem int

	// Hot lines are globally shared lines (flags, reduction cells) that
	// every core reads and writes; HotAccessFrac of accesses touch them
	// and HotWriteFrac of those are writes.
	HotLines      int
	HotAccessFrac float64
	HotWriteFrac  float64

	// Mid lines are shared by groups of MidSharers neighbouring cores.
	MidLines      int
	MidSharers    int
	MidAccessFrac float64
	MidWriteFrac  float64

	// Private accesses: StreamFrac of them walk fresh lines (compulsory
	// misses); the rest reuse a small per-core set of ReuseLines (hits).
	PrivateWriteFrac float64
	StreamFrac       float64
	ReuseLines       int

	// Migratory lines are owned by one core at a time and handed
	// around: each visit reads then writes the line. The classic
	// pattern update-based protocols lose on — WiDir's UpdateCount
	// decay must return such lines to the wired protocol.
	MigLines      int
	MigAccessFrac float64

	// Pipeline queues model the producer-consumer stage structure of
	// the PARSEC pipeline codes: core i writes queue lines that core
	// i+1 reads — two sharers per line with a single alternating
	// writer, exactly the pattern that stays on the wired protocol.
	PipeDepth      int     // queue cells per stage boundary (0 = none)
	PipeAccessFrac float64 // fraction of accesses touching the queues

	// PhaseEvery, when non-zero, structures the run as alternating
	// compute and communication phases of this many steps (real
	// time-stepped codes interleave private number-crunching with
	// neighbour/global exchange). During compute phases shared-access
	// fractions are quartered; during communication phases they are
	// doubled. The long-run average stays close to the configured mix.
	PhaseEvery int

	// Synchronization density: a lock critical section every LockEvery
	// steps (0 = never) over Locks distinct locks with CritAccesses
	// shared-data accesses inside; a global barrier every BarrierEvery
	// steps (0 = never).
	LockEvery    int
	Locks        int
	CritAccesses int
	BarrierEvery int
}

// Scale returns a copy with the per-core work scaled by f, preserving
// strong-scaling semantics: the step count, the per-core reuse working
// set, and the lock/barrier step intervals all scale together, so the
// *total* number of synchronization episodes and the per-core data
// footprint track the work division (quick tests and Fig. 10 core
// sweeps both rely on this).
func (p Profile) Scale(f float64) Profile {
	q := p
	q.Steps = scaleInt(p.Steps, f, 1)
	q.ReuseLines = scaleInt(p.ReuseLines, f, 8)
	if p.BarrierEvery > 0 {
		q.BarrierEvery = scaleInt(p.BarrierEvery, f, 50)
	}
	if p.LockEvery > 0 {
		q.LockEvery = scaleInt(p.LockEvery, f, 40)
	}
	if p.PhaseEvery > 0 {
		q.PhaseEvery = scaleInt(p.PhaseEvery, f, 50)
	}
	return q
}

func scaleInt(v int, f float64, floor int) int {
	if v == 0 {
		return 0
	}
	s := int(float64(v) * f)
	if s < floor {
		s = floor
	}
	return s
}

type tstate uint8

const (
	stRun            tstate = iota
	stAccess                // compute emitted; the data access follows
	stLockTAS               // awaiting test-and-set result
	stLockSpin              // awaiting spin-load result
	stCrit                  // inside a critical section
	stBarrierReset          // last arriver: awaiting the counter reset RMW
	stBarrierRelease        // last arriver: emit the sense release store
	stBarrierAdd            // awaiting the fetch-add result
	stBarrierSpin           // awaiting the sense spin-load result
	stLockPause             // adaptive-spin pause before the next lock probe
	stBarrierPause          // adaptive-spin pause before the next sense probe
)

// thread is the reactive instruction stream of one core; it implements
// cpu.InstrSource as a resumable state machine. Next is re-entered with
// the result of the previous WantResult instruction, which drives the
// spin loops.
type thread struct {
	p     Profile
	core  int
	cores int
	rng   *xrand.Source

	step      int
	state     tstate
	access    cpu.Instr // staged data access (stAccess)
	lockAddr  addrspace.Addr
	lockFails int // consecutive failed probes, drives spin backoff
	critLeft  int
	barrier   *barrierState
	stream    addrspace.Addr
	migTurn   bool
	migLine   addrspace.Addr
	migLeft   int
	sense     uint64
	done      bool

	// Barriers counts completed barrier episodes (tests).
	Barriers int
}

// barrierState holds the shared addresses of the global sense-reversing
// barrier.
type barrierState struct {
	counter addrspace.Addr
	sense   addrspace.Addr
}

// Program builds the per-core instruction sources for a profile on an
// n-core machine. The same seed yields the same workload.
func Program(p Profile, n int, seed uint64) []cpu.InstrSource {
	master := xrand.New(seed ^ 0xabcdef12345)
	bar := &barrierState{
		counter: regionSync,
		sense:   regionSync + addrspace.LineSize, // separate lines
	}
	srcs := make([]cpu.InstrSource, n)
	for i := 0; i < n; i++ {
		srcs[i] = &thread{
			p:       p,
			core:    i,
			cores:   n,
			rng:     master.Split(),
			barrier: bar,
			stream:  regionPrivate + addrspace.Addr(i)*privateStride,
		}
	}
	return srcs
}

// lockLine returns the address of lock i, one line apart to avoid
// false sharing (the suites are "properly synchronized").
func lockLine(i int) addrspace.Addr {
	return regionSync + addrspace.Addr(2+i)*addrspace.LineSize
}

// Next implements cpu.InstrSource.
func (t *thread) Next(prev uint64, prevValid bool) (cpu.Instr, bool) {
	if t.done {
		return cpu.Instr{}, false
	}
	switch t.state {
	case stRun:
		return t.nextRun()

	case stAccess:
		t.state = stRun
		return t.access, true

	case stLockTAS:
		if prev == 0 {
			// Acquired.
			t.lockFails = 0
			t.state = stCrit
			t.critLeft = t.p.CritAccesses
			return t.Next(0, false)
		}
		t.state = stLockSpin
		return cpu.Instr{Kind: cpu.KLoad, Addr: t.lockAddr, WantResult: true}, true

	case stLockSpin:
		if prev == 0 && (t.lockFails == 0 || t.rng.Bool(0.5)) {
			// Observed free: attempt the acquire with a CAS, the way
			// the suites' PARMACS/pthread locks do. A failed CAS
			// performs no store, so contention does not amplify write
			// traffic. Waiters that already failed once only attempt
			// with probability 1/2, staggering the post-release rush.
			t.state = stLockTAS
			return cpu.Instr{Kind: cpu.KRMW, RMW: coherence.RMWCompareSwap, Expected: 0, Value: 1, Addr: t.lockAddr, WantResult: true}, true
		}
		// Short randomized pause between probes (test-and-test-and-set
		// spinning). Probes are local reads on a W-state lock line, so
		// frequent spinning is cheap and keeps the waiters in the
		// wireless sharer group — the behaviour behind the paper's
		// "50+ sharers updated" bin for lock and barrier lines.
		if t.lockFails < 8 {
			t.lockFails++
		}
		t.state = stLockPause
		return cpu.Instr{Kind: cpu.KPause, N: 8 + t.rng.Intn(25)}, true

	case stLockPause:
		t.state = stLockSpin
		return cpu.Instr{Kind: cpu.KLoad, Addr: t.lockAddr, WantResult: true}, true

	case stCrit:
		if t.critLeft > 0 {
			t.critLeft--
			return t.critAccess(), true
		}
		t.state = stRun
		return cpu.Instr{Kind: cpu.KStore, Addr: t.lockAddr, Value: 0}, true

	case stBarrierAdd:
		if prev == uint64(t.cores-1) {
			// Last arriver: reset the counter with a completing RMW so
			// the reset is globally visible before the release store.
			t.state = stBarrierReset
			return cpu.Instr{Kind: cpu.KRMW, RMW: coherence.RMWExchange, Addr: t.barrier.counter, Value: 0, WantResult: true}, true
		}
		t.state = stBarrierSpin
		return cpu.Instr{Kind: cpu.KLoad, Addr: t.barrier.sense, WantResult: true}, true

	case stBarrierReset:
		t.state = stBarrierRelease
		return cpu.Instr{Kind: cpu.KStore, Addr: t.barrier.sense, Value: t.sense}, true

	case stBarrierRelease:
		t.Barriers++
		t.state = stRun
		return t.nextRun()

	case stBarrierSpin:
		if prev == t.sense {
			t.Barriers++
			t.state = stRun
			return t.nextRun()
		}
		t.state = stBarrierPause
		return cpu.Instr{Kind: cpu.KPause, N: 4 + t.rng.Intn(12)}, true

	case stBarrierPause:
		t.state = stBarrierSpin
		return cpu.Instr{Kind: cpu.KLoad, Addr: t.barrier.sense, WantResult: true}, true
	}
	panic("workload: unreachable thread state")
}

// nextRun advances the main phase: a compute block plus one memory
// access per step, with periodic lock and barrier episodes.
func (t *thread) nextRun() (cpu.Instr, bool) {
	if t.step >= t.p.Steps {
		t.done = true
		return cpu.Instr{}, false
	}
	t.step++

	if t.p.BarrierEvery > 0 && t.step%t.p.BarrierEvery == 0 {
		t.sense ^= 1
		t.state = stBarrierAdd
		return cpu.Instr{Kind: cpu.KRMW, RMW: coherence.RMWFetchAdd, Addr: t.barrier.counter, Value: 1, WantResult: true}, true
	}
	if t.p.LockEvery > 0 && t.step%t.p.LockEvery == 0 && t.p.Locks > 0 {
		// Test-and-test-and-set: spin on an ordinary load first, and
		// only attempt the atomic when the lock was observed free —
		// the way the PARMACS/pthread locks of the suites behave.
		t.lockAddr = lockLine(t.rng.Intn(t.p.Locks))
		t.lockFails = 0
		t.state = stLockSpin
		return cpu.Instr{Kind: cpu.KLoad, Addr: t.lockAddr, WantResult: true}, true
	}

	t.access = t.memAccess()
	if t.p.ComputePerMem > 0 {
		t.state = stAccess
		// Real applications have work imbalance; jittering the compute
		// block by +/-25% staggers synchronization arrivals, which is
		// what keeps the paper's wireless collision rates low.
		n := t.p.ComputePerMem
		jitter := n / 2
		if jitter > 0 {
			n += t.rng.Intn(jitter+1) - jitter/2
		}
		if n < 1 {
			n = 1
		}
		return cpu.Instr{Kind: cpu.KCompute, N: n}, true
	}
	return t.access, true
}

// sharedScale returns the multiplier the current phase applies to the
// shared-access fractions (1 when phases are disabled).
func (t *thread) sharedScale() float64 {
	if t.p.PhaseEvery <= 0 {
		return 1
	}
	if (t.step/t.p.PhaseEvery)%2 == 0 {
		return 0.25 // compute phase
	}
	return 2 // communication phase
}

// memAccess synthesizes one data access per the profile's mix.
func (t *thread) memAccess() cpu.Instr {
	r := t.rng.Float64() / t.sharedScale()
	pipe := t.p.PipeAccessFrac
	if t.p.PipeDepth == 0 {
		pipe = 0
	}
	mig := t.p.MigAccessFrac
	if t.p.MigLines == 0 {
		mig = 0
	}
	switch {
	case r < pipe:
		// Pipeline: produce into our downstream stage queue or consume
		// from the upstream one, alternating. Queue cells for the
		// boundary after core i live at index i.
		t.migTurn = !t.migTurn
		cell := addrspace.Addr(t.rng.Intn(t.p.PipeDepth))
		if t.migTurn {
			line := regionPipe + (addrspace.Addr(t.core)*addrspace.Addr(t.p.PipeDepth)+cell)*addrspace.LineSize
			return t.readOrWrite(line, 1)
		}
		up := (t.core + t.cores - 1) % t.cores
		line := regionPipe + (addrspace.Addr(up)*addrspace.Addr(t.p.PipeDepth)+cell)*addrspace.LineSize
		return t.readOrWrite(line, 0)
	case r < pipe+mig:
		// Migratory visit: a core works on one line for a burst of
		// alternating reads and writes before another core takes it
		// over — ownership hops between cores, with rarely more than
		// one or two simultaneous interested parties per line. This is
		// the pattern that must *stay wired* under WiDir.
		if t.migLeft == 0 {
			t.migLine = regionMig + addrspace.Addr(t.rng.Intn(t.p.MigLines))*addrspace.LineSize
			t.migLeft = 6
		}
		t.migLeft--
		t.migTurn = !t.migTurn
		if t.migTurn {
			return t.readOrWrite(t.migLine, 0)
		}
		return t.readOrWrite(t.migLine, 1)
	case r < pipe+mig+t.p.HotAccessFrac && t.p.HotLines > 0:
		line := regionHot + addrspace.Addr(t.rng.Intn(t.p.HotLines))*addrspace.LineSize
		return t.readOrWrite(line, t.p.HotWriteFrac)
	case r < pipe+mig+t.p.HotAccessFrac+t.p.MidAccessFrac && t.p.MidLines > 0 && t.p.MidSharers > 0:
		group := t.core / t.p.MidSharers
		idx := group*t.p.MidLines + t.rng.Intn(t.p.MidLines)
		line := regionMid + addrspace.Addr(idx)*addrspace.LineSize
		return t.readOrWrite(line, t.p.MidWriteFrac)
	default:
		var line addrspace.Addr
		if t.p.ReuseLines == 0 || t.rng.Bool(t.p.StreamFrac) {
			line = t.stream
			t.stream += addrspace.LineSize
		} else {
			base := regionPrivate + addrspace.Addr(t.core)*privateStride
			line = base + addrspace.Addr(t.rng.Intn(t.p.ReuseLines))*addrspace.LineSize
		}
		return t.readOrWrite(line, t.p.PrivateWriteFrac)
	}
}

func (t *thread) readOrWrite(line addrspace.Addr, writeFrac float64) cpu.Instr {
	a := line + addrspace.Addr(t.rng.Intn(addrspace.WordsPerLine))*addrspace.WordSize
	if t.rng.Bool(writeFrac) {
		return cpu.Instr{Kind: cpu.KStore, Addr: a, Value: t.rng.Uint64()}
	}
	return cpu.Instr{Kind: cpu.KLoad, Addr: a}
}

// critAccess touches hot shared data inside a critical section.
func (t *thread) critAccess() cpu.Instr {
	line := regionHot
	if t.p.HotLines > 0 {
		line += addrspace.Addr(t.rng.Intn(t.p.HotLines)) * addrspace.LineSize
	}
	return t.readOrWrite(line, 0.5)
}
