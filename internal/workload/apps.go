package workload

// The evaluated applications (Table IV), modeled as synthetic sharing
// profiles. Each profile is tuned so that (a) its Baseline L1 MPKI
// lands near the paper's measured value, (b) aggregate write traffic to
// highly-shared lines stays within the wireless data channel's capacity
// (one word per 5 cycles chip-wide — the regime the paper evaluates,
// with collision probabilities of a few percent), and (c) the sharing
// structure matches what the paper reports drives WiDir's benefit:
// radiosity's task-queue locks make >90% of wireless writes update 50+
// sharers; water-spa/ocean-nc/barnes/fmm mix global reduction cells
// with group sharing; the PARSEC pipeline codes (blackscholes,
// bodytrack, dedup, ferret, freqmine) are dominated by private data and
// see little benefit.
//
// PaperMPKI records Table IV for side-by-side reporting; the values
// measured on this simulator are in EXPERIMENTS.md.

// DefaultSteps is the per-core step budget of the standard runs; scale
// with Profile.Scale for quick tests.
const DefaultSteps = 4000

// Apps returns the 20 evaluated application profiles in Table IV order
// (SPLASH-3 first, then PARSEC).
func Apps() []Profile {
	return []Profile{
		{
			Name: "water-spa", PaperMPKI: 0.49,
			Steps: DefaultSteps, ComputePerMem: 14,
			HotLines: 8, HotAccessFrac: 0.045, HotWriteFrac: 0.02,
			MidLines: 8, MidSharers: 8, MidAccessFrac: 0.05, MidWriteFrac: 0.1,
			PhaseEvery: 1000,
			StreamFrac: 0.002, ReuseLines: 48, PrivateWriteFrac: 0.3,
			LockEvery: 900, Locks: 4, CritAccesses: 2, BarrierEvery: 2000,
		},
		{
			Name: "water-nsq", PaperMPKI: 2.86,
			Steps: DefaultSteps, ComputePerMem: 11,
			HotLines: 8, HotAccessFrac: 0.03, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.05, MidWriteFrac: 0.1,
			PhaseEvery: 1000,
			StreamFrac: 0.018, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 800, Locks: 8, CritAccesses: 2, BarrierEvery: 2000,
		},
		{
			Name: "ocean-nc", PaperMPKI: 16.05,
			Steps: DefaultSteps, ComputePerMem: 5,
			HotLines: 8, HotAccessFrac: 0.03, HotWriteFrac: 0.02,
			MidLines: 16, MidSharers: 8, MidAccessFrac: 0.05, MidWriteFrac: 0.07,
			PhaseEvery: 650,
			StreamFrac: 0.085, ReuseLines: 64, PrivateWriteFrac: 0.35,
			BarrierEvery: 1300,
		},
		{
			Name: "volrend", PaperMPKI: 2.44,
			Steps: DefaultSteps, ComputePerMem: 11,
			HotLines: 6, HotAccessFrac: 0.02, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.04, MidWriteFrac: 0.08,
			StreamFrac: 0.018, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 700, Locks: 16, CritAccesses: 2,
		},
		{
			Name: "radiosity", PaperMPKI: 5.28,
			Steps: DefaultSteps, ComputePerMem: 8,
			HotLines: 12, HotAccessFrac: 0.08, HotWriteFrac: 0.02,
			MidLines: 8, MidSharers: 16, MidAccessFrac: 0.03, MidWriteFrac: 0.04,
			StreamFrac: 0.012, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 500, Locks: 3, CritAccesses: 3,
		},
		{
			Name: "raytrace", PaperMPKI: 10.05,
			Steps: DefaultSteps, ComputePerMem: 7,
			HotLines: 8, HotAccessFrac: 0.05, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.05, MidWriteFrac: 0.08,
			StreamFrac: 0.055, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 600, Locks: 2, CritAccesses: 2,
		},
		{
			Name: "cholesky", PaperMPKI: 5.92,
			Steps: DefaultSteps, ComputePerMem: 9,
			HotLines: 6, HotAccessFrac: 0.025, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.05, MidWriteFrac: 0.08,
			StreamFrac: 0.038, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 800, Locks: 8, CritAccesses: 2,
		},
		{
			Name: "fft", PaperMPKI: 5.05,
			Steps: DefaultSteps, ComputePerMem: 9,
			HotLines: 4, HotAccessFrac: 0.02, HotWriteFrac: 0.02,
			MidLines: 24, MidSharers: 8, MidAccessFrac: 0.06, MidWriteFrac: 0.06,
			PhaseEvery: 750,
			StreamFrac: 0.034, ReuseLines: 64, PrivateWriteFrac: 0.35,
			BarrierEvery: 1500,
		},
		{
			Name: "lu-nc", PaperMPKI: 21.52,
			Steps: DefaultSteps, ComputePerMem: 4,
			HotLines: 4, HotAccessFrac: 0.015, HotWriteFrac: 0.02,
			MidLines: 16, MidSharers: 8, MidAccessFrac: 0.06, MidWriteFrac: 0.08,
			PhaseEvery: 700,
			StreamFrac: 0.095, ReuseLines: 48, PrivateWriteFrac: 0.35,
			BarrierEvery: 1400,
		},
		{
			Name: "lu-c", PaperMPKI: 1.9,
			Steps: DefaultSteps, ComputePerMem: 12,
			HotLines: 4, HotAccessFrac: 0.03, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.06, MidWriteFrac: 0.1,
			PhaseEvery: 700,
			StreamFrac: 0.008, ReuseLines: 64, PrivateWriteFrac: 0.3,
			BarrierEvery: 1400,
		},
		{
			Name: "radix", PaperMPKI: 9.41,
			Steps: DefaultSteps, ComputePerMem: 6,
			HotLines: 6, HotAccessFrac: 0.025, HotWriteFrac: 0.02,
			MidLines: 16, MidSharers: 8, MidAccessFrac: 0.06, MidWriteFrac: 0.1,
			PhaseEvery: 600,
			StreamFrac: 0.050, ReuseLines: 64, PrivateWriteFrac: 0.4,
			BarrierEvery: 1200,
		},
		{
			Name: "barnes", PaperMPKI: 9.53,
			Steps: DefaultSteps, ComputePerMem: 7,
			HotLines: 12, HotAccessFrac: 0.055, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.05, MidWriteFrac: 0.08,
			PhaseEvery: 900,
			StreamFrac: 0.045, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 600, Locks: 6, CritAccesses: 2, BarrierEvery: 1800,
		},
		{
			Name: "fmm", PaperMPKI: 1.88,
			Steps: DefaultSteps, ComputePerMem: 12,
			HotLines: 8, HotAccessFrac: 0.04, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.04, MidWriteFrac: 0.08,
			PhaseEvery: 1000,
			StreamFrac: 0.005, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 900, Locks: 8, CritAccesses: 2, BarrierEvery: 2000,
		},
		// PARSEC (simsmall).
		{
			Name: "blackscholes", PaperMPKI: 0.13,
			Steps: DefaultSteps, ComputePerMem: 16,
			StreamFrac: 0.002, ReuseLines: 40, PrivateWriteFrac: 0.25,
			BarrierEvery: 3000,
		},
		{
			Name: "bodytrack", PaperMPKI: 7.51,
			Steps: DefaultSteps, ComputePerMem: 7,
			HotLines: 2, HotAccessFrac: 0.006, HotWriteFrac: 0.04,
			StreamFrac: 0.055, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 1100, Locks: 4, CritAccesses: 2, BarrierEvery: 2500,
		},
		{
			Name: "canneal", PaperMPKI: 23.21,
			Steps: DefaultSteps, ComputePerMem: 4,
			HotLines: 16, HotAccessFrac: 0.02, HotWriteFrac: 0.02,
			MidLines: 24, MidSharers: 16, MidAccessFrac: 0.04, MidWriteFrac: 0.05,
			StreamFrac: 0.105, ReuseLines: 32, PrivateWriteFrac: 0.4,
		},
		{
			Name: "dedup", PaperMPKI: 4.1,
			Steps: DefaultSteps, ComputePerMem: 10,
			HotLines: 2, HotAccessFrac: 0.004, HotWriteFrac: 0.04,
			StreamFrac: 0.042, ReuseLines: 64, PrivateWriteFrac: 0.35,
			LockEvery: 1500, Locks: 8, CritAccesses: 2,
		},
		{
			Name: "fluidanimate", PaperMPKI: 1.27,
			Steps: DefaultSteps, ComputePerMem: 13,
			HotLines: 4, HotAccessFrac: 0.02, HotWriteFrac: 0.02,
			MidLines: 12, MidSharers: 8, MidAccessFrac: 0.04, MidWriteFrac: 0.08,
			StreamFrac: 0.006, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 800, Locks: 16, CritAccesses: 2, BarrierEvery: 2200,
		},
		{
			Name: "ferret", PaperMPKI: 6.34,
			Steps: DefaultSteps, ComputePerMem: 8,
			HotLines: 2, HotAccessFrac: 0.004, HotWriteFrac: 0.04,
			StreamFrac: 0.052, ReuseLines: 64, PrivateWriteFrac: 0.3,
			LockEvery: 1600, Locks: 6, CritAccesses: 2,
		},
		{
			Name: "freqmine", PaperMPKI: 8.84,
			Steps: DefaultSteps, ComputePerMem: 7,
			HotLines: 2, HotAccessFrac: 0.004, HotWriteFrac: 0.03,
			StreamFrac: 0.065, ReuseLines: 64, PrivateWriteFrac: 0.3,
		},
	}
}

// ByName returns the named profile, or ok=false.
func ByName(name string) (Profile, bool) {
	for _, p := range Apps() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the application names in Table IV order.
func Names() []string {
	apps := Apps()
	out := make([]string, len(apps))
	for i, p := range apps {
		out[i] = p.Name
	}
	return out
}
