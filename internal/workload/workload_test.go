package workload

import (
	"testing"

	"repro/internal/addrspace"
	"repro/internal/cpu"
)

// miniExec runs a set of threads against a flat, sequentially-consistent
// memory, interleaving them round-robin one instruction at a time and
// applying RMWs atomically. It is the simplest possible "machine": the
// workload state machines (locks, barriers) must behave correctly on it.
type miniExec struct {
	mem      map[addrspace.Addr]uint64
	srcs     []cpu.InstrSource
	prev     []uint64
	prevOK   []bool
	done     []bool
	retired  []int
	inCrit   map[addrspace.Addr]int // lock address -> holder count
	maxCrit  int
	critAddr map[int]addrspace.Addr // core -> lock it holds
}

func newMiniExec(srcs []cpu.InstrSource) *miniExec {
	return &miniExec{
		mem:      map[addrspace.Addr]uint64{},
		srcs:     srcs,
		prev:     make([]uint64, len(srcs)),
		prevOK:   make([]bool, len(srcs)),
		done:     make([]bool, len(srcs)),
		retired:  make([]int, len(srcs)),
		inCrit:   map[addrspace.Addr]int{},
		critAddr: map[int]addrspace.Addr{},
	}
}

// step advances one thread by one instruction; returns false when all done.
func (e *miniExec) run(t *testing.T, maxSteps int) {
	t.Helper()
	for step := 0; step < maxSteps; step++ {
		active := false
		for i, src := range e.srcs {
			if e.done[i] {
				continue
			}
			active = true
			ins, ok := src.Next(e.prev[i], e.prevOK[i])
			e.prevOK[i] = false
			if !ok {
				e.done[i] = true
				continue
			}
			e.retired[i]++
			switch ins.Kind {
			case cpu.KCompute:
				// no memory effect
			case cpu.KLoad:
				v := e.mem[ins.Addr]
				if ins.WantResult {
					e.prev[i], e.prevOK[i] = v, true
				}
			case cpu.KStore:
				e.mem[ins.Addr] = ins.Value
				if held, ok := e.critAddr[i]; ok && held == ins.Addr && ins.Value == 0 {
					// Lock release.
					e.inCrit[held]--
					delete(e.critAddr, i)
				}
				if ins.WantResult {
					e.prev[i], e.prevOK[i] = ins.Value, true
				}
			case cpu.KRMW:
				old := e.mem[ins.Addr]
				e.mem[ins.Addr] = ins.RMW.Apply(old, ins.Value, ins.Expected)
				if ins.WantResult {
					e.prev[i], e.prevOK[i] = old, true
				}
				// Track lock acquisition (CAS 0->1 success).
				if old == 0 && e.mem[ins.Addr] == 1 && ins.Addr >= lockLine(0) {
					e.inCrit[ins.Addr]++
					e.critAddr[i] = ins.Addr
					if e.inCrit[ins.Addr] > e.maxCrit {
						e.maxCrit = e.inCrit[ins.Addr]
					}
				}
			}
		}
		if !active {
			return
		}
	}
	for i, d := range e.done {
		if !d {
			t.Fatalf("thread %d did not finish (retired %d)", i, e.retired[i])
		}
	}
}

func TestAppsAreWellFormed(t *testing.T) {
	apps := Apps()
	if len(apps) != 20 {
		t.Fatalf("expected 20 applications, got %d", len(apps))
	}
	seen := map[string]bool{}
	for _, p := range apps {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("bad or duplicate app name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Steps <= 0 || p.PaperMPKI <= 0 {
			t.Fatalf("%s: steps=%d paperMPKI=%v", p.Name, p.Steps, p.PaperMPKI)
		}
		if p.HotAccessFrac+p.MidAccessFrac > 0.5 {
			t.Fatalf("%s: shared access fractions too high", p.Name)
		}
		if p.MidAccessFrac > 0 && p.MidSharers == 0 {
			t.Fatalf("%s: mid sharing without group size", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("radiosity"); !ok {
		t.Fatal("radiosity missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom app")
	}
	if len(Names()) != 20 {
		t.Fatal("Names() wrong length")
	}
}

func TestScale(t *testing.T) {
	p, _ := ByName("barnes")
	q := p.Scale(0.5)
	if q.Steps != p.Steps/2 {
		t.Fatalf("steps not scaled: %d", q.Steps)
	}
	if q.ReuseLines >= p.ReuseLines && p.ReuseLines > 16 {
		t.Fatal("reuse set not scaled")
	}
	if p.BarrierEvery > 0 && q.BarrierEvery >= p.BarrierEvery {
		t.Fatal("barrier interval not scaled")
	}
	tiny := p.Scale(0.0001)
	if tiny.Steps < 1 || tiny.ReuseLines < 8 {
		t.Fatal("floors not applied")
	}
}

func TestProgramDeterminism(t *testing.T) {
	p, _ := ByName("fmm")
	p = p.Scale(0.05)
	a := Program(p, 4, 42)
	b := Program(p, 4, 42)
	for i := 0; i < 4; i++ {
		var pa, pb uint64
		var va, vb bool
		// Compare a bounded prefix: fake results can keep spin loops
		// alive indefinitely, which is fine — the streams only need to
		// match instruction for instruction.
		for step := 0; step < 5000; step++ {
			x, okA := a[i].Next(pa, va)
			y, okB := b[i].Next(pb, vb)
			if okA != okB || x != y {
				t.Fatalf("thread %d diverged at step %d", i, step)
			}
			if !okA {
				break
			}
			// Feed deterministic fake results; alternate values so
			// spin loops eventually take both branches.
			va, vb = x.WantResult, y.WantResult
			pa, pb = uint64(step%2), uint64(step%2)
		}
	}
}

func TestProgramSeedsDiffer(t *testing.T) {
	p, _ := ByName("fmm")
	p = p.Scale(0.05)
	a := Program(p, 1, 1)[0]
	b := Program(p, 1, 2)[0]
	same := true
	for i := 0; i < 50; i++ {
		x, _ := a.Next(0, false)
		y, _ := b.Next(0, false)
		if x != y {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	p := Profile{
		Name: "locks", PaperMPKI: 1, Steps: 400, ComputePerMem: 1,
		StreamFrac: 0.1, ReuseLines: 8, PrivateWriteFrac: 0.5,
		LockEvery: 10, Locks: 2, CritAccesses: 3,
	}
	srcs := Program(p, 8, 3)
	e := newMiniExec(srcs)
	e.run(t, 2_000_000)
	if e.maxCrit > 1 {
		t.Fatalf("mutual exclusion violated: %d holders", e.maxCrit)
	}
	// All locks released at the end.
	for a, n := range e.inCrit {
		if n != 0 {
			t.Fatalf("lock %#x still held %d times", a, n)
		}
	}
}

func TestBarrierAlignment(t *testing.T) {
	p := Profile{
		Name: "barriers", PaperMPKI: 1, Steps: 300, ComputePerMem: 1,
		StreamFrac: 0.1, ReuseLines: 8, PrivateWriteFrac: 0.5,
		BarrierEvery: 50,
	}
	srcs := Program(p, 6, 9)
	e := newMiniExec(srcs)
	e.run(t, 2_000_000)
	// Every thread passed the same number of barriers.
	want := srcs[0].(*thread).Barriers
	if want == 0 {
		t.Fatal("no barriers executed")
	}
	for i, s := range srcs {
		if got := s.(*thread).Barriers; got != want {
			t.Fatalf("thread %d passed %d barriers, thread 0 passed %d", i, got, want)
		}
	}
}

func TestStreamAddressesAreCoreLocal(t *testing.T) {
	p := Profile{Name: "x", PaperMPKI: 1, Steps: 100, StreamFrac: 1.0, PrivateWriteFrac: 0}
	srcs := Program(p, 2, 5)
	seen := map[addrspace.Addr]int{}
	for i, s := range srcs {
		for {
			ins, ok := s.Next(0, false)
			if !ok {
				break
			}
			if ins.Kind != cpu.KLoad && ins.Kind != cpu.KStore {
				continue
			}
			line := addrspace.LineOf(ins.Addr)
			base := addrspace.LineOf(regionPrivate + addrspace.Addr(i)*privateStride)
			limit := addrspace.LineOf(regionPrivate + addrspace.Addr(i+1)*privateStride)
			if line < base || line >= limit {
				t.Fatalf("core %d touched foreign private line %#x", i, line)
			}
			seen[ins.Addr]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no accesses generated")
	}
}

func TestComputeRatio(t *testing.T) {
	p := Profile{Name: "x", PaperMPKI: 1, Steps: 200, ComputePerMem: 9, StreamFrac: 0, ReuseLines: 8}
	src := Program(p, 1, 1)[0]
	var compute, mem int
	for {
		ins, ok := src.Next(0, false)
		if !ok {
			break
		}
		switch ins.Kind {
		case cpu.KCompute:
			compute += ins.N
		default:
			mem++
		}
	}
	ratio := float64(compute) / float64(mem)
	if ratio < 8.5 || ratio > 9.5 {
		t.Fatalf("compute:mem = %.2f, want ~9", ratio)
	}
}

func TestHotLinesShared(t *testing.T) {
	p := Profile{
		Name: "x", PaperMPKI: 1, Steps: 500,
		HotLines: 4, HotAccessFrac: 1.0, HotWriteFrac: 0.5,
	}
	srcs := Program(p, 3, 7)
	perCore := make([]map[addrspace.Line]bool, 3)
	for i, s := range srcs {
		perCore[i] = map[addrspace.Line]bool{}
		for {
			ins, ok := s.Next(0, false)
			if !ok {
				break
			}
			if ins.Kind == cpu.KLoad || ins.Kind == cpu.KStore {
				perCore[i][addrspace.LineOf(ins.Addr)] = true
			}
		}
	}
	// All cores touch the same hot lines.
	for l := range perCore[0] {
		if !perCore[1][l] || !perCore[2][l] {
			t.Fatalf("hot line %#x not shared by all cores", l)
		}
	}
}

func TestMidGroupsArePartitioned(t *testing.T) {
	p := Profile{
		Name: "x", PaperMPKI: 1, Steps: 500,
		MidLines: 4, MidSharers: 2, MidAccessFrac: 1.0, MidWriteFrac: 0.5,
	}
	srcs := Program(p, 4, 7)
	lines := make([]map[addrspace.Line]bool, 4)
	for i, s := range srcs {
		lines[i] = map[addrspace.Line]bool{}
		for {
			ins, ok := s.Next(0, false)
			if !ok {
				break
			}
			if ins.Kind == cpu.KLoad || ins.Kind == cpu.KStore {
				lines[i][addrspace.LineOf(ins.Addr)] = true
			}
		}
	}
	// Cores 0,1 share a group; cores 2,3 another; the two must not overlap.
	for l := range lines[0] {
		if lines[2][l] || lines[3][l] {
			t.Fatalf("mid line %#x leaked across groups", l)
		}
	}
}

func TestPhaseStructure(t *testing.T) {
	p := Profile{
		Name: "phased", PaperMPKI: 1, Steps: 2000,
		HotLines: 4, HotAccessFrac: 0.2, HotWriteFrac: 0.5,
		StreamFrac: 0.1, ReuseLines: 8, PrivateWriteFrac: 0.5,
		PhaseEvery: 500,
	}
	src := Program(p, 1, 3)[0].(*thread)
	// Count hot accesses per phase window.
	var perPhase []int
	count := 0
	lastPhase := 0
	for {
		ins, ok := src.Next(0, false)
		if !ok {
			break
		}
		phase := (src.step - 1) / p.PhaseEvery
		if phase != lastPhase {
			perPhase = append(perPhase, count)
			count = 0
			lastPhase = phase
		}
		if ins.Kind == cpu.KLoad || ins.Kind == cpu.KStore {
			if addrspace.LineOf(ins.Addr) >= addrspace.LineOf(regionHot) &&
				addrspace.LineOf(ins.Addr) < addrspace.LineOf(regionMid) {
				count++
			}
		}
	}
	perPhase = append(perPhase, count)
	if len(perPhase) < 4 {
		t.Fatalf("phases observed: %d", len(perPhase))
	}
	// Communication phases (odd) must be markedly hotter than compute
	// phases (even).
	if perPhase[1] < 2*perPhase[0] || perPhase[3] < 2*perPhase[2] {
		t.Fatalf("phase contrast missing: %v", perPhase)
	}
}

func TestPipelinePattern(t *testing.T) {
	p := Profile{
		Name: "pipe", PaperMPKI: 1, Steps: 600,
		PipeDepth: 2, PipeAccessFrac: 1.0,
		ReuseLines: 8,
	}
	srcs := Program(p, 3, 5)
	// Core 1 must only touch the queues at boundaries 0 (upstream) and
	// 1 (downstream), writing only downstream.
	for {
		ins, ok := srcs[1].Next(0, false)
		if !ok {
			break
		}
		if ins.Kind != cpu.KLoad && ins.Kind != cpu.KStore {
			continue
		}
		line := addrspace.LineOf(ins.Addr)
		base := addrspace.LineOf(regionPipe)
		boundary := int(line-base) / p.PipeDepth
		switch ins.Kind {
		case cpu.KStore:
			if boundary != 1 {
				t.Fatalf("core 1 produced into boundary %d", boundary)
			}
		case cpu.KLoad:
			if boundary != 0 {
				t.Fatalf("core 1 consumed from boundary %d", boundary)
			}
		}
	}
}
