package mcheck

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/protomodel"
)

func embeddedModel(t *testing.T) *protomodel.Model {
	t.Helper()
	spec, err := protomodel.EmbeddedSpec()
	if err != nil {
		t.Fatalf("EmbeddedSpec: %v", err)
	}
	return protomodel.ModelFromSpec(spec)
}

func explore(t *testing.T, cfg Config) *Result {
	t.Helper()
	ck, err := New(cfg, embeddedModel(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := ck.Explore()
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return res
}

func wantCoverage(t *testing.T, res *Result, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if res.Coverage[k] == 0 {
			t.Errorf("coverage %q = 0, want > 0 (have %s)", k,
				strings.Join(sortedCoverage(res.Coverage), " "))
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	model := embeddedModel(t)
	bad := []Config{
		{L1s: 1, Lines: 1, Values: 1, Reorder: 1, OpBudget: 4, MaxWiredSharers: 1, UpdateCountMax: 1, FaultDemoteAfter: 1},
		{L1s: 3, Lines: 3, Values: 1, Reorder: 1, OpBudget: 4, MaxWiredSharers: 1, UpdateCountMax: 1, FaultDemoteAfter: 1},
		{L1s: 3, Lines: 1, Values: 0, Reorder: 1, OpBudget: 4, MaxWiredSharers: 1, UpdateCountMax: 1, FaultDemoteAfter: 1},
		{L1s: 3, Lines: 1, Values: 1, Reorder: 0, OpBudget: 4, MaxWiredSharers: 1, UpdateCountMax: 1, FaultDemoteAfter: 1},
		{L1s: 3, Lines: 1, Values: 1, Reorder: 1, OpBudget: 0, MaxWiredSharers: 1, UpdateCountMax: 1, FaultDemoteAfter: 1},
		{L1s: 3, Lines: 1, Values: 1, Reorder: 1, OpBudget: 4, MaxWiredSharers: 3, UpdateCountMax: 1, FaultDemoteAfter: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, model); err == nil {
			t.Errorf("config %d: New accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig(), model); err != nil {
		t.Errorf("New rejected DefaultConfig: %v", err)
	}
}

// TestTwoCoreClean exhaustively explores a two-core model deep enough
// to reach the full wireless round trip: S->W upgrade, wireless
// stores, UpdateCount decay, and the W->S demotion handshake.
func TestTwoCoreClean(t *testing.T) {
	cfg := Config{
		L1s: 2, Lines: 1, Values: 2, Reorder: 2, OpBudget: 5,
		MaxWiredSharers: 1, UpdateCountMax: 2, FaultDemoteAfter: 2,
		DirEvict: true,
	}
	res := explore(t, cfg)
	if !res.Clean() {
		t.Fatalf("violation: %v\npath:\n  %s", res.Violation, strings.Join(res.Violation.Path, "\n  "))
	}
	if res.States < 1000 {
		t.Errorf("suspiciously small state space: %d states", res.States)
	}
	if res.Quiescent == 0 {
		t.Errorf("no quiescent states reached")
	}
	wantCoverage(t, res,
		"air:BrWirUpgr", "tone", "stow-commit", // S->W upgrade handshake
		"air:WirUpd", "decay", // wireless stores and self-invalidation
		"air:WirDwgr", "wtos-start", "wtos-commit", // W->S demotion
		"dir-evict", "victim-serve", "nack",
	)
}

// TestDefaultModelClean is the full CI model (~1M canonical states,
// about a minute): every invariant family over every protocol regime,
// including the three-core races that need a third identity (a stale
// sharer upgrade bouncing off WDiscard, a deposed owner's put reaching
// the count-only DW state, use-once grants passed by invalidations).
func TestDefaultModelClean(t *testing.T) {
	if testing.Short() {
		t.Skip("default model is ~1M states; run without -short")
	}
	res := explore(t, DefaultConfig())
	if !res.Clean() {
		t.Fatalf("violation: %v\npath:\n  %s", res.Violation, strings.Join(res.Violation.Path, "\n  "))
	}
	wantCoverage(t, res,
		"stow-commit", "wtos-commit", "decay", "dir-evict", "defer",
		"use-once", "wdiscard", "wdiscard-ds", "stale-put-dw",
		"tone-fill", "victim-serve", "nack-retry",
	)
	t.Logf("states=%d edges=%d depth=%d quiescent=%d", res.States, res.Edges, res.MaxDepth, res.Quiescent)
}

// TestFaultModeClean enables the wireless-corruption transitions and
// checks the PR 4 recovery rules hold: a corrupted unprivileged store
// bounces to a wired retry, and repeated strikes demote the line W->S.
func TestFaultModeClean(t *testing.T) {
	cfg := Config{
		L1s: 2, Lines: 1, Values: 2, Reorder: 2, OpBudget: 5,
		MaxWiredSharers: 1, UpdateCountMax: 2, FaultDemoteAfter: 1,
		Fault: true, DirEvict: true,
	}
	res := explore(t, cfg)
	if !res.Clean() {
		t.Fatalf("violation: %v\npath:\n  %s", res.Violation, strings.Join(res.Violation.Path, "\n  "))
	}
	wantCoverage(t, res, "fault", "fault-demote", "wtos-commit")
}

// TestMissingSpecRowCaught seeds the conformance direction: deleting
// the spec row that sanctions the W->S commit (busy:w-to-s WirDwgrAck
// -> DS) must surface as a relation violation with a replayable trace.
func TestMissingSpecRowCaught(t *testing.T) {
	spec, err := protomodel.EmbeddedSpec()
	if err != nil {
		t.Fatalf("EmbeddedSpec: %v", err)
	}
	rows := spec.Machines["dir"]
	kept := rows[:0]
	dropped := 0
	for _, r := range rows {
		if r.From == "busy:w-to-s" && r.Event == "WirDwgrAck" && r.Next == "DS" {
			dropped++
			continue
		}
		kept = append(kept, r)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d rows, want 1 (spec layout changed?)", dropped)
	}
	spec.Machines["dir"] = kept

	cfg := Config{
		L1s: 2, Lines: 1, Values: 1, Reorder: 2, OpBudget: 5,
		MaxWiredSharers: 1, UpdateCountMax: 2, FaultDemoteAfter: 2,
		DirEvict: true,
	}
	ck, err := New(cfg, protomodel.ModelFromSpec(spec))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := ck.Explore()
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("mutated spec explored clean; the checker is not validating hops")
	}
	if v.Kind != "relation" {
		t.Fatalf("violation kind = %q, want relation (%v)", v.Kind, v)
	}
	if !strings.Contains(v.Msg, "WirDwgrAck") {
		t.Errorf("violation does not name the event: %v", v)
	}
	if len(v.Path) == 0 {
		t.Fatal("violation has no action path")
	}

	events := ck.Counterexample(v)
	if len(events) == 0 {
		t.Fatal("counterexample replay produced no obs events")
	}
	var jl, pf bytes.Buffer
	if err := obs.WriteJSONL(&jl, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := obs.WritePerfetto(&pf, events); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if jl.Len() == 0 || pf.Len() == 0 {
		t.Fatal("empty trace artifacts")
	}
}

// TestDeterminism: identical configs must explore identical graphs and
// coverage — the canonical encoding and BFS order are deterministic.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		L1s: 2, Lines: 1, Values: 2, Reorder: 2, OpBudget: 4,
		MaxWiredSharers: 1, UpdateCountMax: 2, FaultDemoteAfter: 2,
		DirEvict: true,
	}
	a := explore(t, cfg)
	b := explore(t, cfg)
	if a.States != b.States || a.Edges != b.Edges || a.MaxDepth != b.MaxDepth || a.Quiescent != b.Quiescent {
		t.Fatalf("runs diverge: %+v vs %+v", a, b)
	}
	ca := strings.Join(sortedCoverage(a.Coverage), " ")
	cb := strings.Join(sortedCoverage(b.Coverage), " ")
	if ca != cb {
		t.Fatalf("coverage diverges:\n%s\n%s", ca, cb)
	}
}

// TestFamilyVerdicts covers the reporting helpers.
func TestFamilyVerdicts(t *testing.T) {
	r := &Result{}
	for f, v := range r.FamilyVerdicts() {
		if v != "clean" {
			t.Errorf("family %s = %q on a clean result", f, v)
		}
	}
	r.Violation = &Violation{Kind: "swmr", Msg: "boom"}
	if got := r.FamilyVerdicts()["swmr"]; got != "boom" {
		t.Errorf("swmr verdict = %q, want boom", got)
	}
	if r.Clean() {
		t.Error("Clean() true with a violation")
	}
}
