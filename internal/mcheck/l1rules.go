package mcheck

import "repro/internal/obs"

// ---------- L1 wired delivery (coherence.L1.HandleWired) ----------

func (x *ctx) l1Deliver(id, src int, m msg) {
	li := int(m.line)
	pre := l1Names[x.line(id, li).st]
	switch m.typ {
	case mDataS, mDataE, mDataM, mDataOwnerS, mDataOwnerM, mWirUpgr:
		x.handleDataResponse(id, src, m)
	case mNACK:
		x.handleNACK(id, m)
	case mWDiscard:
		x.handleWDiscard(id, m)
	case mInv:
		x.handleInv(id, src, m)
	case mFwdGetS:
		x.handleFwdGetS(id, m)
	case mFwdGetX:
		x.handleFwdGetX(id, m)
	case mRecall:
		x.handleRecall(id, src, m)
	case mPutAck:
		x.handlePutAck(id, m)
	default:
		x.failProto("L1 %d received %s", id, mtNames[m.typ])
	}
	if x.viol == nil && l1Names[x.line(id, li).st] == pre {
		x.coverStable(x.ck.l1M, pre)
	}
}

// grantState maps a data-response type to the state it installs.
func grantState(typ byte) byte {
	switch typ {
	case mDataS, mDataOwnerS:
		return sS
	case mDataE:
		return sE
	case mDataM, mDataOwnerM:
		return sM
	case mWirUpgr:
		return sW
	}
	return sI
}

func (x *ctx) handleDataResponse(id, src int, m msg) {
	li := int(m.line)
	L := x.line(id, li)
	matches := L.pend && L.pReqID == m.reqID
	toneHeld := false
	var pKind, pVal byte
	var pInv bool
	if matches {
		toneHeld, pKind, pVal, pInv = L.pTone, L.pKind, L.pVal, L.pInv
		if toneHeld {
			L.pTone = false
			x.note(obs.EvToneLower, id, -1, byte(li), 0, 0)
		}
		x.clearPend(L)
		L.nonEvict = false
	}
	st := grantState(m.typ)
	wirelessGrant := m.typ == mWirUpgr
	if toneHeld && st == sS && !pInv {
		// The upgrade broadcast committed while our fill was in
		// flight and the directory counted us into the wireless
		// group: the granted S copy joins the wireless regime. An
		// invalidated (use-once) fill was explicitly uncounted and
		// must not install W; the use-once path consumes it below.
		st, wirelessGrant = sW, true
		x.count("tone-fill")
	}
	if !matches && st == sS {
		return // stale shared grant: drop without installing
	}
	if !matches && wirelessGrant {
		// The upgrade broadcast already flipped this core into the
		// wireless regime (or it has since decayed out of it); the
		// wired grant's payload is stale. Ack the sharer slot if the
		// directory is counting, then drop.
		if m.needAck {
			x.send(id, x.dirNode(), msg{typ: mWirUpgrAck, line: m.line})
		}
		x.count("stale-wirupgr")
		return
	}
	// Unmatched ownership grants (the request they answer was abandoned,
	// e.g. resolved locally by a BrWirUpgr and since re-issued) must
	// still install: the directory has already committed this core as
	// owner, and dropping them would wedge the entry. They complete
	// nothing; if another request of ours is outstanding, the copy is
	// pinned so its eviction notice cannot trail that request.
	if matches && st == sS && pInv {
		// Use-once: the copy was invalidated while pending; serve the
		// load from the granted words without installing.
		x.count("use-once")
		if pKind != opLoad {
			x.violate("integrity", "core %d completed a store from a use-once grant on line %d", id, li)
			return
		}
		x.observeRead(id, li, m.val, m.ver)
		return
	}
	redispatch := false
	var redisVal byte
	if st != sW {
		if i := x.queuedUpd(id, li); i >= 0 {
			// A queued wireless write raced a wired install: cancel it
			// and re-dispatch after the install settles.
			w := x.removeWtx(i)
			redispatch, redisVal = true, w.val
		}
	}
	// Install (in place or fresh).
	x.l1Set(id, li, st)
	L = x.line(id, li)
	L.val, L.ver, L.dirty, L.upd = m.val, m.ver, false, 0
	x.note(obs.EvL1Fill, id, src, byte(li), uint64(m.typ), 0)
	if !matches {
		x.count("stale-own-install")
		if L.pend {
			L.nonEvict = true
		}
	}
	if m.typ == mDataOwnerM {
		x.send(id, x.dirNode(), msg{typ: mXferAck, line: m.line})
	}
	if m.typ == mWirUpgr && m.needAck {
		x.send(id, x.dirNode(), msg{typ: mWirUpgrAck, line: m.line})
	}
	if matches {
		if wirelessGrant {
			if pKind == opLoad {
				x.observeRead(id, li, L.val, L.ver)
			} else {
				x.wirelessStore(id, li, pVal)
			}
		} else if pKind == opLoad {
			x.observeRead(id, li, L.val, L.ver)
		} else {
			// Wired store grant: the write serializes on install.
			if L.ver != x.s.curVer[li] {
				x.violate("integrity", "core %d installed store grant for line %d at version %d, current is %d (lost update)", id, li, L.ver, x.s.curVer[li])
				return
			}
			x.l1Set(id, li, sM)
			L = x.line(id, li)
			L.val, L.ver, L.dirty = pVal, x.serializeWrite(li, pVal), true
			*x.seen(id, li) = L.ver
		}
	}
	if redispatch && x.viol == nil {
		saved := x.event
		x.event = "CoreStore"
		x.access(id, li, opStore, redisVal)
		x.event = saved
	}
}

// satisfies reports whether the resident state already serves the op.
func satisfies(st, op byte) bool {
	if op == opLoad {
		return st != sI
	}
	return st == sE || st == sM || st == sW
}

func (x *ctx) handleNACK(id int, m msg) {
	li := int(m.line)
	L := x.line(id, li)
	if !L.pend || L.pReqID != m.reqID {
		return
	}
	if L.pTone {
		L.pTone = false
		x.note(obs.EvToneLower, id, -1, byte(li), 0, 0)
	}
	if L.st != sI && satisfies(L.st, L.pKind) {
		// The line arrived by other means while we were bouncing:
		// absorb the retry into a plain access.
		op, val := L.pKind, L.pVal
		x.clearPend(L)
		L.nonEvict = false
		saved := x.event
		x.event = coreEvent(op)
		x.access(id, li, op, val)
		x.event = saved
		return
	}
	isSharer := L.st == sS
	L.pShare = isSharer
	L.nonEvict = isSharer
	L.pInv = false
	L.pReqID = x.nextReqID(id, li)
	typ := byte(mGetS)
	if L.pKind == opStore {
		typ = mGetX
	}
	x.count("nack-retry")
	x.send(id, x.dirNode(), msg{typ: typ, line: m.line, req: byte(id),
		reqID: L.pReqID, isSharer: isSharer})
}

func (x *ctx) handleWDiscard(id int, m msg) {
	li := int(m.line)
	L := x.line(id, li)
	if !L.pend || L.pReqID != m.reqID {
		return
	}
	if L.pTone {
		L.pTone = false
		x.note(obs.EvToneLower, id, -1, byte(li), 0, 0)
	}
	if L.st != sI && satisfies(L.st, L.pKind) {
		op, val := L.pKind, L.pVal
		x.clearPend(L)
		L.nonEvict = false
		saved := x.event
		x.event = coreEvent(op)
		x.access(id, li, op, val)
		x.event = saved
		return
	}
	// Still unresolved: retry without the upgrade hint.
	L.pShare = false
	L.nonEvict = false
	L.pReqID = x.nextReqID(id, li)
	typ := byte(mGetS)
	if L.pKind == opStore {
		typ = mGetX
	}
	x.send(id, x.dirNode(), msg{typ: typ, line: m.line, req: byte(id), reqID: L.pReqID})
}

func (x *ctx) handleInv(id, src int, m msg) {
	li := int(m.line)
	L := x.line(id, li)
	if L.pend {
		L.pInv = true
	}
	switch L.st {
	case sS:
		x.invalidateL1(id, li)
	case sE, sM, sW:
		x.failProto("Inv delivered to core %d holding line %d in %s", id, li, l1Names[L.st])
		return
	}
	x.send(id, src, msg{typ: mInvAck, line: m.line})
}

// ownerCopy fetches the line's words for a forward, from the cache or
// the victim buffer.
func (x *ctx) ownerCopy(id, li int) (val, ver byte, dirty, fromCache, ok bool) {
	L := x.line(id, li)
	if L.st != sI {
		return L.val, L.ver, L.dirty, true, true
	}
	if L.vic {
		x.count("victim-serve")
		return L.vicVal, L.vicVer, L.vicDirty, false, true
	}
	return 0, 0, false, false, false
}

func (x *ctx) handleFwdGetS(id int, m msg) {
	li := int(m.line)
	val, ver, dirty, fromCache, ok := x.ownerCopy(id, li)
	if !ok {
		x.failProto("FwdGetS reached core %d with neither line %d nor its victim", id, li)
		return
	}
	if fromCache {
		x.l1Set(id, li, sS)
		x.line(id, li).dirty = false
	}
	x.send(id, int(m.req), msg{typ: mDataOwnerS, line: m.line, req: m.req,
		reqID: m.reqID, hasData: true, val: val, ver: ver})
	x.send(id, x.dirNode(), msg{typ: mCopyBack, line: m.line, req: m.req,
		needAck: dirty, hasData: true, val: val, ver: ver})
}

func (x *ctx) handleFwdGetX(id int, m msg) {
	li := int(m.line)
	val, ver, _, fromCache, ok := x.ownerCopy(id, li)
	if !ok {
		x.failProto("FwdGetX reached core %d with neither line %d nor its victim", id, li)
		return
	}
	if fromCache {
		x.invalidateL1(id, li)
	}
	x.send(id, int(m.req), msg{typ: mDataOwnerM, line: m.line, req: m.req,
		reqID: m.reqID, hasData: true, val: val, ver: ver})
}

func (x *ctx) handleRecall(id, src int, m msg) {
	li := int(m.line)
	L := x.line(id, li)
	switch {
	case L.st != sI:
		val, ver, dirty := L.val, L.ver, L.dirty
		x.invalidateL1(id, li)
		x.send(id, src, msg{typ: mRecallAck, line: m.line, hasData: dirty, val: val, ver: ver})
	case L.vic:
		val, ver, dirty := L.vicVal, L.vicVer, L.vicDirty
		L.vic, L.vicVal, L.vicVer, L.vicDirty = false, 0, 0, false
		x.send(id, src, msg{typ: mRecallAck, line: m.line, hasData: dirty, val: val, ver: ver})
	default:
		x.send(id, src, msg{typ: mRecallAck, line: m.line})
	}
}

func (x *ctx) handlePutAck(id int, m msg) {
	L := x.line(id, int(m.line))
	L.vic, L.vicVal, L.vicVer, L.vicDirty = false, 0, 0, false
}

// ---------- wireless channel ----------

// air serializes one pending wireless transmission: the broadcast is
// atomic — every node sees it in the same global order.
func (x *ctx) air(act action) {
	idx := -1
	for i, w := range x.s.wq {
		if w.kind == act.a && w.sender == act.b && w.line == act.c && w.val == act.d {
			idx = i
			break
		}
	}
	if idx < 0 {
		x.failProto("air action for a transmission not in the queue")
		return
	}
	w := x.removeWtx(idx)
	li := int(w.line)
	switch w.kind {
	case wUpd:
		if x.jammed(li) {
			// The directory is reconfiguring the line: the jam tone
			// aborts the transmission and the writer retries.
			x.note(obs.EvJam, int(w.sender), x.dirNode(), w.line, 0, 0)
			x.count("jam")
			x.wirelessTxAborted(int(w.sender), li, w.val)
			return
		}
		x.serializeWirUpd(w)
	case wBrUpgr:
		x.serializeBrWirUpgr(li)
	case wDwgr:
		x.serializeWirDwgr(li)
	case wInv:
		x.serializeWirInv(li)
	}
}

// corrupt is the fault-mode transition: the wireless store is
// corrupted in flight (internal/fault's wireless-corruption class).
// The writer falls back to a wired retry and the home counts a
// strike toward W->S demotion. Privileged broadcasts retry until
// delivered, so only wUpd entries can be corrupted.
func (x *ctx) corrupt(act action) {
	idx := -1
	for i, w := range x.s.wq {
		if w.kind == wUpd && w.sender == act.b && w.line == act.c && w.val == act.d {
			idx = i
			break
		}
	}
	if idx < 0 {
		x.failProto("corrupt action for a transmission not in the queue")
		return
	}
	w := x.removeWtx(idx)
	li := int(w.line)
	x.note(obs.EvTxCorrupt, int(w.sender), -1, w.line, 0, 0)
	x.count("fault")
	x.noteWirelessFault(li)
	if x.viol == nil {
		x.wirelessTxAborted(int(w.sender), li, w.val)
	}
}

// wirelessTxAborted re-dispatches the writer's store after a jammed
// or corrupted transmission.
func (x *ctx) wirelessTxAborted(sender, li int, val byte) {
	saved := x.event
	x.event = "CoreStore"
	x.access(sender, li, opStore, val)
	x.event = saved
}

// noteWirelessFault mirrors Home.NoteWirelessFault: count a strike;
// demote W->S once the line has misbehaved FaultDemoteAfter times.
func (x *ctx) noteWirelessFault(li int) {
	d := &x.s.dir[li]
	if !d.exists || d.st != dW {
		return
	}
	if int(d.faultF) < x.cfg.FaultDemoteAfter {
		d.faultF++
	}
	if d.busy != bNone || int(d.faultF) < x.cfg.FaultDemoteAfter {
		return
	}
	d.faultF = 0
	x.note(obs.EvWFaultDemote, x.dirNode(), -1, byte(li), 0, 0)
	x.count("fault-demote")
	saved := x.event
	x.event = "WirelessFault"
	x.startWToS(li)
	x.event = saved
}

// serializeWirUpd delivers an unprivileged wireless store: every
// remote W copy merges the update, the home's LLC copy merges, and
// the writer's own copy commits.
func (x *ctx) serializeWirUpd(w wtx) {
	li := int(w.line)
	sender := int(w.sender)
	ver := x.serializeWrite(li, w.val)
	x.note(obs.EvWirUpd, sender, -1, w.line, uint64(w.val), uint64(ver))
	x.count("air:WirUpd")
	saved := x.event
	x.event = "WirUpd"
	for c := 0; c < x.cfg.L1s && x.viol == nil; c++ {
		if c != sender {
			x.handleRemoteUpdate(c, li, w.val, ver)
		}
	}
	if x.viol == nil {
		x.homeWirelessMerge(li, w.val, ver)
	}
	x.event = saved
	if x.viol != nil {
		return
	}
	// Writer-side completion: the store is globally ordered.
	L := x.line(sender, li)
	if L.st == sW {
		L.val, L.ver, L.upd = w.val, ver, 0
	}
	*x.seen(sender, li) = ver
}

func (x *ctx) handleRemoteUpdate(c, li int, val, ver byte) {
	L := x.line(c, li)
	pre := l1Names[L.st]
	defer func() {
		if x.viol == nil && l1Names[x.line(c, li).st] == pre {
			x.coverStable(x.ck.l1M, pre)
		}
	}()
	if L.st != sW {
		return
	}
	L.val, L.ver = val, ver
	if int(L.upd) < x.cfg.UpdateCountMax {
		L.upd++
	}
	if x.queuedUpd(c, li) >= 0 {
		return // our own write is still in flight; no decay
	}
	if int(L.upd) < x.cfg.UpdateCountMax {
		return
	}
	if L.pend {
		return
	}
	// Update-count decay: self-invalidate and release the sharer slot.
	x.note(obs.EvWDecay, c, -1, byte(li), 0, 0)
	x.count("decay")
	x.invalidateL1(c, li)
	x.send(c, x.dirNode(), msg{typ: mPutW, line: byte(li)})
}

// homeWirelessMerge is Home.HandleWireless for a WirUpd payload.
func (x *ctx) homeWirelessMerge(li int, val, ver byte) {
	d := &x.s.dir[li]
	if !d.exists {
		return
	}
	if d.st != dW {
		x.failProto("WirUpd serialized while the directory holds line %d in %s", li, dirFSMName(d))
		return
	}
	d.val, d.ver, d.dirty, d.hasData = val, ver, true, true
	d.faultF = 0
	x.coverStable(x.ck.dirM, dirNames[dW])
}

// serializeBrWirUpgr delivers the privileged S->W upgrade broadcast:
// surviving S sharers flip to W; cores with a request in flight raise
// the tone so the directory holds the commit.
func (x *ctx) serializeBrWirUpgr(li int) {
	x.count("air:BrWirUpgr")
	saved := x.event
	x.event = "BrWirUpgr"
	for c := 0; c < x.cfg.L1s && x.viol == nil; c++ {
		x.handleBrWirUpgr(c, li)
	}
	x.event = saved
	if x.viol != nil {
		return
	}
	d := &x.s.dir[li]
	if d.busy != bSToW {
		x.failProto("BrWirUpgr serialized with the directory in %s", dirFSMName(d))
		return
	}
	d.tWaitTone = true
}

func (x *ctx) handleBrWirUpgr(c, li int) {
	L := x.line(c, li)
	pre := l1Names[L.st]
	defer func() {
		if x.viol == nil && l1Names[x.line(c, li).st] == pre {
			x.coverStable(x.ck.l1M, pre)
		}
	}()
	if L.st == sS {
		x.l1Set(c, li, sW)
		L = x.line(c, li)
		L.upd = 0
		if L.pend {
			// The pending upgrade resolves locally in the new regime.
			pKind, pVal := L.pKind, L.pVal
			if L.pTone {
				L.pTone = false
				x.note(obs.EvToneLower, c, -1, byte(li), 0, 0)
			}
			x.clearPend(L)
			L.nonEvict = false
			if pKind == opStore {
				x.wirelessStore(c, li, pVal)
			} else {
				x.observeRead(c, li, L.val, L.ver)
			}
		}
		return
	}
	if L.pend && !L.pTone {
		L.pTone = true
		x.note(obs.EvToneRaise, c, -1, byte(li), 0, 0)
		x.count("tone")
	}
}

// toneCommit finishes the S->W upgrade once the tone channel is
// quiet: the directory commits DW and adopts the new sharer count.
func (x *ctx) toneCommit(li int) {
	d := &x.s.dir[li]
	if d.busy != bSToW || !d.tWaitTone || !x.toneQuiet() {
		x.failProto("tone commit without a quiet tone channel and a waiting upgrade")
		return
	}
	x.event = mtNames[d.tReqType]
	newCount := d.tNewCount
	clearTxn(d)
	x.dirSet(li, dW, bNone)
	// Snapshot the identities being collapsed into the count: a wired
	// eviction notice may only decrement wcount if its sender is here
	// (per-source FIFO makes anything else provably stale).
	d.staleW = d.sharers
	d.sharers = 0
	d.wcount = newCount
	d.faultF = 0
	x.note(obs.EvWUpgrade, x.dirNode(), -1, byte(li), uint64(newCount), 0)
	x.count("stow-commit")
	x.drainDeferred(li)
}

// serializeWirDwgr delivers the privileged W->S downgrade broadcast:
// every wireless sharer drops to S and acks its identity to the home.
func (x *ctx) serializeWirDwgr(li int) {
	x.count("air:WirDwgr")
	saved := x.event
	x.event = "WirDwgr"
	type redis struct {
		core int
		val  byte
	}
	var redispatch []redis
	for c := 0; c < x.cfg.L1s && x.viol == nil; c++ {
		L := x.line(c, li)
		pre := l1Names[L.st]
		if i := x.queuedUpd(c, li); i >= 0 {
			w := x.removeWtx(i)
			redispatch = append(redispatch, redis{c, w.val})
		}
		if L.st == sW {
			x.l1Set(c, li, sS)
			x.line(c, li).dirty = false
			x.send(c, x.dirNode(), msg{typ: mWirDwgrAck, line: byte(li)})
		} else if x.viol == nil && l1Names[x.line(c, li).st] == pre {
			x.coverStable(x.ck.l1M, pre)
		}
	}
	x.event = saved
	for _, r := range redispatch {
		if x.viol != nil {
			return
		}
		x.wirelessTxAborted(r.core, li, r.val)
	}
}

// serializeWirInv delivers the privileged eviction invalidate: every
// wireless copy drops, then the home finishes its eviction.
func (x *ctx) serializeWirInv(li int) {
	x.count("air:WirInv")
	saved := x.event
	x.event = "WirInv"
	type redis struct {
		core int
		val  byte
	}
	var redispatch []redis
	for c := 0; c < x.cfg.L1s && x.viol == nil; c++ {
		L := x.line(c, li)
		pre := l1Names[L.st]
		if i := x.queuedUpd(c, li); i >= 0 {
			w := x.removeWtx(i)
			redispatch = append(redispatch, redis{c, w.val})
			x.invalidateL1(c, li)
			continue
		}
		if L.st == sW {
			x.invalidateL1(c, li)
		} else if x.viol == nil && l1Names[x.line(c, li).st] == pre {
			x.coverStable(x.ck.l1M, pre)
		}
	}
	x.event = saved
	if x.viol == nil {
		d := &x.s.dir[li]
		if d.busy != bEvict {
			x.failProto("WirInv serialized with the directory in %s", dirFSMName(d))
		} else {
			x.event = "Evict"
			x.finishDirEvict(li)
		}
	}
	for _, r := range redispatch {
		if x.viol != nil {
			return
		}
		x.wirelessTxAborted(r.core, li, r.val)
	}
}
