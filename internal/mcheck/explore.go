package mcheck

import (
	"fmt"

	"repro/internal/obs"
)

// node flags.
const (
	fQuiescent byte = 1 << iota
	fWToS0          // line 0 mid W->S demotion
	fWToS1          // line 1 mid W->S demotion
)

type node struct {
	parent int32
	depth  int32
	act    action
	flags  byte
}

type edge struct{ from, to int32 }

// Explore exhaustively enumerates the reachable state space, checking
// safety invariants on every state and liveness over the full graph.
// It returns an error only when the search itself cannot finish
// (MaxStates exceeded); protocol problems are reported in
// Result.Violation.
func (ck *Checker) Explore() (*Result, error) {
	cfg := ck.cfg
	cov := map[string]int{}
	res := &Result{Coverage: cov}

	init := newState(cfg)
	init.normalize()
	key, rep := canonical(cfg, init)
	visited := map[string]int32{key: 0}
	nodes := []node{{parent: -1}}
	var edges []edge

	type qent struct {
		idx int32
		st  *state
	}
	queue := []qent{{0, rep}}
	setFlags(&nodes[0], rep, cfg)

	fail := func(idx int32, act action, hasAct bool, v *Violation) (*Result, error) {
		v.acts = pathTo(nodes, idx)
		if hasAct {
			v.acts = append(v.acts, act)
		}
		v.Path = make([]string, len(v.acts))
		for i, a := range v.acts {
			v.Path[i] = a.String()
		}
		res.Violation = v
		finishResult(res, nodes, edges)
		return res, nil
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		acts := ck.enumerate(cur.st)
		if v := ck.checkDeadlock(cur.st, acts); v != nil {
			return fail(cur.idx, action{}, false, v)
		}

		// Partial-order reduction: a delivery that provably does
		// nothing but consume its message commutes with every other
		// transition — commit the first such delivery immediately.
		expand := acts
		var preSucc map[int]*state
		if ds := ck.pureDrop(cur.st, acts); ds != nil {
			expand = []action{ds.act}
			preSucc = map[int]*state{0: ds.succ}
		}

		for i, act := range expand {
			var succ *state
			var v *Violation
			if preSucc != nil && preSucc[i] != nil {
				succ = preSucc[i]
			} else {
				succ, v = ck.apply(cur.st, act, nil, cov, 0)
			}
			if v != nil {
				return fail(cur.idx, act, true, v)
			}
			if v = ck.checkState(succ); v != nil {
				return fail(cur.idx, act, true, v)
			}
			k, srep := canonical(cfg, succ)
			if to, ok := visited[k]; ok {
				edges = append(edges, edge{cur.idx, to})
				continue
			}
			if len(nodes) >= cfg.MaxStates {
				return nil, fmt.Errorf("mcheck: state space exceeds MaxStates=%d", cfg.MaxStates)
			}
			to := int32(len(nodes))
			visited[k] = to
			nd := node{parent: cur.idx, depth: nodes[cur.idx].depth + 1, act: act}
			setFlags(&nd, srep, cfg)
			nodes = append(nodes, nd)
			edges = append(edges, edge{cur.idx, to})
			queue = append(queue, qent{to, srep})
		}
	}

	if v := ck.checkLiveness(nodes, edges, cfg); v != nil {
		v.Path = make([]string, len(v.acts))
		for i, a := range v.acts {
			v.Path[i] = a.String()
		}
		res.Violation = v
		finishResult(res, nodes, edges)
		return res, nil
	}
	finishResult(res, nodes, edges)
	return res, nil
}

func finishResult(res *Result, nodes []node, edges []edge) {
	res.States = len(nodes)
	res.Edges = len(edges)
	for i := range nodes {
		if int(nodes[i].depth) > res.MaxDepth {
			res.MaxDepth = int(nodes[i].depth)
		}
		if nodes[i].flags&fQuiescent != 0 {
			res.Quiescent++
		}
	}
}

func setFlags(nd *node, s *state, cfg Config) {
	if !workInFlight(s) {
		nd.flags |= fQuiescent
	}
	if s.dir[0].busy == bWToS {
		nd.flags |= fWToS0
	}
	if cfg.Lines > 1 && s.dir[1].busy == bWToS {
		nd.flags |= fWToS1
	}
}

func pathTo(nodes []node, idx int32) []action {
	var rev []action
	for idx > 0 {
		rev = append(rev, nodes[idx].act)
		idx = nodes[idx].parent
	}
	out := make([]action, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// workInFlight reports whether anything in the system is mid-flight.
func workInFlight(s *state) bool {
	for _, ch := range s.chans {
		if len(ch) > 0 {
			return true
		}
	}
	if len(s.wq) > 0 {
		return true
	}
	for i := range s.l1 {
		if s.l1[i].pend || s.l1[i].vic {
			return true
		}
	}
	for i := range s.dir {
		if s.dir[i].busy != bNone || len(s.dir[i].deferred) > 0 {
			return true
		}
	}
	return false
}

// enumerate lists every enabled action in deterministic order.
func (ck *Checker) enumerate(s *state) []action {
	cfg := ck.cfg
	n := cfg.L1s
	nodes := n + 2
	var out []action
	// 1. wired deliveries
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			if len(s.chans[a*nodes+b]) > 0 {
				out = append(out, action{kind: actDeliver, a: byte(a), b: byte(b)})
			}
		}
	}
	// 2. wireless serializations (the queue is canonically sorted)
	for _, w := range s.wq {
		out = append(out, action{kind: actAir, a: w.kind, b: w.sender, c: w.line, d: w.val})
	}
	// 3. fault injection: corrupt an unprivileged store mid-air
	if cfg.Fault {
		for _, w := range s.wq {
			if w.kind == wUpd && !jammedIn(s, int(w.line)) {
				out = append(out, action{kind: actCorrupt, b: w.sender, c: w.line, d: w.val})
			}
		}
	}
	// 4. tone commit
	for li := range s.dir {
		if s.dir[li].busy == bSToW && s.dir[li].tWaitTone && quietIn(s) {
			out = append(out, action{kind: actTone, c: byte(li)})
		}
	}
	// 5. core issues
	budget := s.ops > 0
	for c := 0; budget && c < n; c++ {
		if !coreIdle(s, cfg, c) {
			continue
		}
		for li := 0; li < cfg.Lines; li++ {
			if s.dir[li].busy != bNone {
				continue // don't hammer a mid-transaction line with fresh issues
			}
			L := s.l1[c*cfg.Lines+li]
			roomy := len(s.chans[chIdx(cfg, c, n)]) < cfg.Reorder
			if L.st != sI || roomy {
				out = append(out, action{kind: actIssue, a: opLoad, b: byte(c), c: byte(li)})
			}
			storeHits := L.st == sE || L.st == sM || L.st == sW
			if storeHits || roomy {
				for v := 0; v < cfg.Values; v++ {
					out = append(out, action{kind: actIssue, a: opStore, b: byte(c), c: byte(li), d: byte(v)})
				}
			}
		}
	}
	// 6. spontaneous L1 evictions (capacity pressure)
	for c := 0; budget && c < n; c++ {
		for li := 0; li < cfg.Lines; li++ {
			L := s.l1[c*cfg.Lines+li]
			if L.st == sI || L.nonEvict || L.pend || L.vic || s.dir[li].busy != bNone {
				continue
			}
			if len(s.chans[chIdx(cfg, c, n)]) < cfg.Reorder {
				out = append(out, action{kind: actEvictL1, b: byte(c), c: byte(li)})
			}
		}
	}
	// 7. directory evictions
	if cfg.DirEvict && budget {
		for li := range s.dir {
			d := &s.dir[li]
			if d.exists && d.busy == bNone {
				out = append(out, action{kind: actEvictDir, c: byte(li)})
			}
		}
	}
	return out
}

func jammedIn(s *state, li int) bool {
	switch s.dir[li].busy {
	case bSToW, bWAddSharer, bWToS:
		return true
	}
	return false
}

func quietIn(s *state) bool {
	for i := range s.l1 {
		if s.l1[i].pTone {
			return false
		}
	}
	return true
}

func coreIdle(s *state, cfg Config, c int) bool {
	for li := 0; li < cfg.Lines; li++ {
		if s.l1[c*cfg.Lines+li].pend {
			return false
		}
	}
	for _, w := range s.wq {
		if w.kind == wUpd && w.sender == byte(c) {
			return false
		}
	}
	return true
}

// checkDeadlock: when work is in flight, some non-issue transition
// must be enabled (fault injection is not credited with progress).
func (ck *Checker) checkDeadlock(s *state, acts []action) *Violation {
	if !workInFlight(s) {
		return nil
	}
	for _, a := range acts {
		switch a.kind {
		case actDeliver, actAir, actTone:
			return nil
		}
	}
	return &Violation{Kind: "deadlock", Msg: "work in flight but no delivery, wireless serialization, or tone commit is enabled"}
}

type dropResult struct {
	act  action
	succ *state
}

// pureDrop looks for a delivery whose successor equals the parent
// minus the delivered message: such a delivery commutes with every
// other enabled transition and strictly decreases the message
// measure, so committing it first preserves all reachable states and
// all violations.
func (ck *Checker) pureDrop(s *state, acts []action) *dropResult {
	cfg := ck.cfg
	for _, act := range acts {
		if act.kind != actDeliver {
			continue
		}
		succ, v := ck.apply(s, act, nil, nil, 0)
		if v != nil {
			return nil // let the main loop rediscover and report it
		}
		minus := s.clone()
		ch := &minus.chans[chIdx(cfg, int(act.a), int(act.b))]
		*ch = append([]msg(nil), (*ch)[1:]...)
		minus.normalize()
		if succ.encode(cfg) == minus.encode(cfg) {
			return &dropResult{act, succ}
		}
	}
	return nil
}

// checkState enforces the per-state safety invariants: SWMR and
// symbolic-value integrity (plus cache/directory agreement when the
// state is quiescent).
func (ck *Checker) checkState(s *state) *Violation {
	cfg := ck.cfg
	for li := 0; li < cfg.Lines; li++ {
		owners, valid := 0, 0
		for c := 0; c < cfg.L1s; c++ {
			switch s.l1[c*cfg.Lines+li].st {
			case sE, sM:
				owners++
				valid++
			case sS, sW:
				valid++
			}
		}
		if owners > 1 {
			return &Violation{Kind: "swmr", Msg: fmt.Sprintf("line %d has %d wired owners", li, owners)}
		}
		if owners == 1 && valid > 1 {
			return &Violation{Kind: "swmr", Msg: fmt.Sprintf("line %d has a wired owner plus %d other valid copies", li, valid-1)}
		}
		// Same version, same value — across caches, victims, LLC, memory.
		type copyOf struct {
			where    string
			val, ver byte
		}
		var copies []copyOf
		for c := 0; c < cfg.L1s; c++ {
			L := s.l1[c*cfg.Lines+li]
			if L.st != sI {
				copies = append(copies, copyOf{fmt.Sprintf("core %d (%s)", c, l1Names[L.st]), L.val, L.ver})
			}
			if L.vic {
				copies = append(copies, copyOf{fmt.Sprintf("core %d victim", c), L.vicVal, L.vicVer})
			}
		}
		d := s.dir[li]
		if d.exists && d.hasData {
			copies = append(copies, copyOf{"LLC", d.val, d.ver})
		}
		copies = append(copies, copyOf{"memory", s.memVal[li], s.memVer[li]})
		for i := range copies {
			for j := i + 1; j < len(copies); j++ {
				if copies[i].ver == copies[j].ver && copies[i].val != copies[j].val {
					return &Violation{Kind: "integrity", Msg: fmt.Sprintf(
						"line %d version %d has two values: %s=%d vs %s=%d",
						li, copies[i].ver, copies[i].where, copies[i].val, copies[j].where, copies[j].val)}
				}
			}
			if copies[i].ver == s.curVer[li] && copies[i].val != s.curVal[li] {
				return &Violation{Kind: "integrity", Msg: fmt.Sprintf(
					"line %d: %s carries version %d with value %d, serialized value is %d",
					li, copies[i].where, copies[i].ver, copies[i].val, s.curVal[li])}
			}
		}
	}
	if !workInFlight(s) {
		if v := ck.checkQuiescent(s); v != nil {
			return v
		}
	}
	return nil
}

// checkQuiescent enforces cache/directory/LLC agreement once nothing
// is in flight: every valid copy is current, and the directory's
// sharer tracking matches the caches exactly.
func (ck *Checker) checkQuiescent(s *state) *Violation {
	cfg := ck.cfg
	for li := 0; li < cfg.Lines; li++ {
		d := s.dir[li]
		for c := 0; c < cfg.L1s; c++ {
			L := s.l1[c*cfg.Lines+li]
			if L.st != sI && L.ver != s.curVer[li] {
				return &Violation{Kind: "integrity", Msg: fmt.Sprintf(
					"quiescent: core %d holds line %d (%s) at version %d, current is %d",
					c, li, l1Names[L.st], L.ver, s.curVer[li])}
			}
			inSharers := d.exists && d.sharers&(1<<c) != 0
			isOwner := d.exists && d.owner == byte(c)
			switch L.st {
			case sS:
				if !d.exists || d.st != dS || !inSharers {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf(
						"quiescent: core %d holds line %d in S but the directory does not track it (%s)",
						c, li, dirFSMName(&d))}
				}
			case sE, sM:
				if !d.exists || d.st != dO || !isOwner {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf(
						"quiescent: core %d owns line %d (%s) but the directory says %s",
						c, li, l1Names[L.st], dirFSMName(&d))}
				}
			case sW:
				if !d.exists || d.st != dW {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf(
						"quiescent: core %d holds line %d in W but the directory says %s",
						c, li, dirFSMName(&d))}
				}
			case sI:
				if inSharers {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf(
						"quiescent: directory tracks core %d as a sharer of line %d it does not hold", c, li)}
				}
				if isOwner {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf(
						"quiescent: directory tracks core %d as the owner of line %d it does not hold", c, li)}
				}
			}
		}
		if d.exists {
			switch d.st {
			case dS:
				if d.sharers == 0 {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf("quiescent: line %d is DS with no sharers", li)}
				}
			case dO:
				if d.owner == noNode {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf("quiescent: line %d is DO with no owner", li)}
				}
			case dW:
				wCores := 0
				for c := 0; c < cfg.L1s; c++ {
					if s.l1[c*cfg.Lines+li].st == sW {
						wCores++
					}
				}
				if int(d.wcount) != wCores {
					return &Violation{Kind: "swmr", Msg: fmt.Sprintf(
						"quiescent: line %d wireless sharer count %d but %d cores hold W", li, d.wcount, wCores)}
				}
			}
			if d.hasData && d.st != dO && d.ver != s.curVer[li] {
				return &Violation{Kind: "integrity", Msg: fmt.Sprintf(
					"quiescent: LLC holds line %d at version %d, current is %d (%s)",
					li, d.ver, s.curVer[li], dirFSMName(&d))}
			}
		}
	}
	return nil
}

// checkLiveness verifies EF-quiescence (every state can still drain)
// and W-demotion completion (every busy:w-to-s state can leave it)
// by backward reachability over the explored graph.
func (ck *Checker) checkLiveness(nodes []node, edges []edge, cfg Config) *Violation {
	rev := make([][]int32, len(nodes))
	for _, e := range edges {
		rev[e.to] = append(rev[e.to], e.from)
	}
	reach := func(target func(n *node) bool) []bool {
		ok := make([]bool, len(nodes))
		var stack []int32
		for i := range nodes {
			if target(&nodes[i]) {
				ok[i] = true
				stack = append(stack, int32(i))
			}
		}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range rev[v] {
				if !ok[u] {
					ok[u] = true
					stack = append(stack, u)
				}
			}
		}
		return ok
	}
	quiesce := reach(func(n *node) bool { return n.flags&fQuiescent != 0 })
	for i := range nodes {
		if !quiesce[i] {
			return &Violation{Kind: "liveness",
				Msg:  "state cannot reach quiescence (in-flight work can never fully drain)",
				acts: pathTo(nodes, int32(i))}
		}
	}
	wtosBits := []byte{fWToS0}
	if cfg.Lines > 1 {
		wtosBits = append(wtosBits, fWToS1)
	}
	for li, bit := range wtosBits {
		escape := reach(func(n *node) bool { return n.flags&bit == 0 })
		for i := range nodes {
			if !escape[i] {
				return &Violation{Kind: "liveness",
					Msg:  fmt.Sprintf("busy:w-to-s on line %d can never complete", li),
					acts: pathTo(nodes, int32(i))}
			}
		}
	}
	return nil
}

// Counterexample replays a violation's action path from the initial
// state and returns the obs event stream it generates. Node and core
// identities are in canonical (symmetry-reduced) coordinates — the
// same coordinates the violation's Path labels use.
func (ck *Checker) Counterexample(v *Violation) []obs.Event {
	if v == nil {
		return nil
	}
	var events []obs.Event
	emit := func(e obs.Event) { events = append(events, e) }
	cur := newState(ck.cfg)
	cur.normalize()
	_, cur = canonical(ck.cfg, cur)
	for i, act := range v.acts {
		succ, verr := ck.apply(cur, act, emit, nil, uint64(i+1))
		if verr != nil {
			break
		}
		_, cur = canonical(ck.cfg, succ)
	}
	return events
}
