package mcheck

import (
	"sort"
	"sync"
)

// L1 line states.
const (
	sI byte = iota
	sS
	sE
	sM
	sW
)

var l1Names = [...]string{sI: "I", sS: "S", sE: "E", sM: "M", sW: "W"}

// Directory stable states.
const (
	dI byte = iota
	dS
	dO
	dW
)

var dirNames = [...]string{dI: "DI", dS: "DS", dO: "DO", dW: "DW"}

// Directory busy kinds (bNone = stable).
const (
	bNone byte = iota
	bFetchMem
	bFwdGetS
	bFwdGetX
	bInvAll
	bSToW
	bWAddSharer
	bWToS
	bEvict
)

var busyNames = [...]string{
	bFetchMem:   "busy:fetch-mem",
	bFwdGetS:    "busy:fwd-gets",
	bFwdGetX:    "busy:fwd-getx",
	bInvAll:     "busy:inv-all",
	bSToW:       "busy:s-to-w",
	bWAddSharer: "busy:w-add-sharer",
	bWToS:       "busy:w-to-s",
	bEvict:      "busy:evict",
}

// Wired message types, mirroring coherence.MsgType names.
const (
	mGetS byte = iota
	mGetX
	mDataS
	mDataE
	mDataM
	mNACK
	mWirUpgr
	mInv
	mFwdGetS
	mFwdGetX
	mRecall
	mInvAck
	mCopyBack
	mXferAck
	mRecallAck
	mPutS
	mPutE
	mPutM
	mPutW
	mWirUpgrAck
	mWirDwgrAck
	mPutAck
	mWDiscard
	mDataOwnerS
	mDataOwnerM
	mMemRead
	mMemData
	mMemWrite
)

var mtNames = [...]string{
	mGetS: "GetS", mGetX: "GetX", mDataS: "DataS", mDataE: "DataE",
	mDataM: "DataM", mNACK: "NACK", mWirUpgr: "WirUpgr", mInv: "Inv",
	mFwdGetS: "FwdGetS", mFwdGetX: "FwdGetX", mRecall: "Recall",
	mInvAck: "InvAck", mCopyBack: "CopyBack", mXferAck: "XferAck",
	mRecallAck: "RecallAck", mPutS: "PutS", mPutE: "PutE", mPutM: "PutM",
	mPutW: "PutW", mWirUpgrAck: "WirUpgrAck", mWirDwgrAck: "WirDwgrAck",
	mPutAck: "PutAck", mWDiscard: "WDiscard", mDataOwnerS: "DataOwnerS",
	mDataOwnerM: "DataOwnerM", mMemRead: "MemRead", mMemData: "MemData",
	mMemWrite: "MemWrite",
}

// Pending-operation kinds.
const (
	opLoad byte = iota
	opStore
)

// Wireless transmission kinds, in serialization-priority-free order.
const (
	wUpd    byte = iota // unprivileged fine-grain store (WirUpd)
	wBrUpgr             // privileged S->W upgrade broadcast (BrWirUpgr)
	wDwgr               // privileged W->S downgrade (WirDwgr)
	wInv                // privileged eviction invalidate (WirInv)
)

var wNames = [...]string{wUpd: "WirUpd", wBrUpgr: "BrWirUpgr", wDwgr: "WirDwgr", wInv: "WirInv"}

const noNode = byte(0xFF)

// msg is one wired message. src is implied by the channel it sits in.
type msg struct {
	typ      byte
	line     byte
	req      byte // requester identity carried by GetS/GetX/Fwd*/DataOwner*
	reqID    byte
	isSharer bool // GetX upgrade hint
	needAck  bool // WirUpgr tone request / CopyBack dirty flag
	hasData  bool
	val, ver byte
}

// wtx is one pending wireless transmission (an un-serialized
// broadcast). Order in the queue is immaterial — any entry may win
// the channel — so the slice is kept canonically sorted.
type wtx struct {
	kind   byte
	sender byte // L1 id, or noNode for the directory
	line   byte
	val    byte // wUpd payload (the store's value)
}

// l1Line is one cache line in one L1, plus the per-line slice of the
// core's architectural state the invariants need.
type l1Line struct {
	st       byte
	val, ver byte
	dirty    bool
	upd      byte // wireless UpdateCount toward decay
	nonEvict bool // pinned by an upgrade miss in flight

	// victim buffer (held from eviction until PutAck)
	vic      bool
	vicVal   byte
	vicVer   byte
	vicDirty bool

	// pending wired request
	pend   bool
	pKind  byte // opLoad / opStore
	pVal   byte // store value
	pShare bool // isSharer upgrade hint at issue
	pTone  bool // holding the wireless tone (ToneAck)
	pInv   bool // invalidated while pending (use-once grant)
	pReqID byte
}

// dirLine is the directory/LLC entry for one line.
type dirLine struct {
	exists   bool
	st       byte
	busy     byte
	sharers  uint16 // wired sharer bitmask (DS)
	owner    byte   // DO owner, else noNode
	ownerDty bool
	wcount   byte   // DW wireless sharer count
	staleW   uint16 // wired-era pointers collapsed at the S->W commit (DW)
	hasData  bool
	dirty    bool
	val, ver byte
	faultF   byte // wireless fault strikes toward demotion

	// in-flight transaction bookkeeping
	tReq      byte // requester L1, else noNode
	tReqType  byte // mGetS / mGetX
	tReqID    byte
	tAcks     int8   // acks still outstanding
	tAckIDs   uint16 // WirDwgrAck responder bitmask (busy:w-to-s)
	tNewCount byte   // wireless sharer count at S->W commit
	tWaitTone bool   // upgrade broadcast done, waiting for tones to clear

	deferred []msg // puts absorbed while busy
}

// state is one global model state.
type state struct {
	l1     []l1Line // [core*Lines+line]
	dir    []dirLine
	memVal []byte
	memVer []byte
	curVer []byte  // per-line latest serialized version (ghost)
	curVal []byte  // value written by the latest serialized version (ghost)
	seen   []byte  // [core*Lines+line]: newest version the core observed (ghost)
	chans  [][]msg // [(src*(L1s+2))+dst] FIFO wired channels
	wq     []wtx   // pending wireless transmissions, kept sorted
	ops    byte    // remaining operation budget (issues + evictions)
}

func newState(cfg Config) *state {
	n := cfg.L1s
	s := &state{
		l1:     make([]l1Line, n*cfg.Lines),
		dir:    make([]dirLine, cfg.Lines),
		memVal: make([]byte, cfg.Lines),
		memVer: make([]byte, cfg.Lines),
		curVer: make([]byte, cfg.Lines),
		curVal: make([]byte, cfg.Lines),
		seen:   make([]byte, n*cfg.Lines),
		chans:  make([][]msg, (n+2)*(n+2)),
		ops:    byte(cfg.OpBudget),
	}
	for i := range s.l1 {
		s.l1[i].st = sI
	}
	for i := range s.dir {
		s.dir[i] = dirLine{owner: noNode, tReq: noNode}
	}
	return s
}

// statePool recycles state shells (and their slice capacity) between
// canonicalizations. canonical returns its losing scratch here and
// clone draws from it, so the exploration loop reaches a steady state
// with near-zero per-state slice allocation.
var statePool = sync.Pool{New: func() any { return new(state) }}

// copyInto overwrites dst with a deep copy of s, reusing dst's
// existing slice capacity wherever it suffices. dst must not alias s.
func (s *state) copyInto(dst *state) {
	dst.l1 = append(dst.l1[:0], s.l1...)
	dst.memVal = append(dst.memVal[:0], s.memVal...)
	dst.memVer = append(dst.memVer[:0], s.memVer...)
	dst.curVer = append(dst.curVer[:0], s.curVer...)
	dst.curVal = append(dst.curVal[:0], s.curVal...)
	dst.seen = append(dst.seen[:0], s.seen...)
	dst.wq = append(dst.wq[:0], s.wq...)
	dst.ops = s.ops
	if cap(dst.dir) < len(s.dir) {
		dst.dir = make([]dirLine, len(s.dir))
	}
	dst.dir = dst.dir[:len(s.dir)]
	for i := range s.dir {
		def := dst.dir[i].deferred
		dst.dir[i] = s.dir[i]
		dst.dir[i].deferred = append(def[:0], s.dir[i].deferred...)
	}
	if len(dst.chans) != len(s.chans) {
		dst.chans = make([][]msg, len(s.chans))
	}
	for i := range s.chans {
		dst.chans[i] = append(dst.chans[i][:0], s.chans[i]...)
	}
}

func (s *state) clone() *state {
	c := statePool.Get().(*state)
	s.copyInto(c)
	return c
}

func wtxLess(a, b wtx) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.sender != b.sender {
		return a.sender < b.sender
	}
	if a.line != b.line {
		return a.line < b.line
	}
	return a.val < b.val
}

// normalize restores the canonical invariants a state carries between
// transitions: the wireless queue is sorted (it is a set).
func (s *state) normalize() {
	sort.Slice(s.wq, func(i, j int) bool { return wtxLess(s.wq[i], s.wq[j]) })
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendMsg(buf []byte, m msg) []byte {
	return append(buf, m.typ, m.line, m.req, m.reqID,
		boolByte(m.isSharer)|boolByte(m.needAck)<<1|boolByte(m.hasData)<<2,
		m.val, m.ver)
}

// encode serializes the state into a deterministic byte string.
// There is no free-running request-id counter to exclude: fresh IDs
// are allocated as max(outstanding)+1 per (core, line), which
// composes with the order-preserving renormalization below.
// encPool recycles encode buffers; only the final string conversion
// allocates on the hot path.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

func (s *state) encode(cfg Config) string {
	bp := encPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for i := range s.l1 {
		L := &s.l1[i]
		buf = append(buf, L.st, L.val, L.ver,
			boolByte(L.dirty)|boolByte(L.nonEvict)<<1|boolByte(L.vic)<<2|boolByte(L.vicDirty)<<3,
			L.upd, L.vicVal, L.vicVer,
			boolByte(L.pend)|boolByte(L.pShare)<<1|boolByte(L.pTone)<<2|boolByte(L.pInv)<<3,
			L.pKind, L.pVal, L.pReqID, s.seen[i])
	}
	for i := range s.dir {
		d := &s.dir[i]
		buf = append(buf, boolByte(d.exists), d.st, d.busy,
			byte(d.sharers), byte(d.sharers>>8), d.owner,
			boolByte(d.ownerDty)|boolByte(d.hasData)<<1|boolByte(d.dirty)<<2|boolByte(d.tWaitTone)<<3,
			d.wcount, byte(d.staleW), byte(d.staleW>>8), d.val, d.ver, d.faultF,
			d.tReq, d.tReqType, d.tReqID, byte(d.tAcks),
			byte(d.tAckIDs), byte(d.tAckIDs>>8), d.tNewCount,
			byte(len(d.deferred)))
		for _, m := range d.deferred {
			buf = appendMsg(buf, m)
		}
	}
	buf = append(buf, s.memVal...)
	buf = append(buf, s.memVer...)
	buf = append(buf, s.curVer...)
	buf = append(buf, s.curVal...)
	for _, ch := range s.chans {
		buf = append(buf, byte(len(ch)))
		for _, m := range ch {
			buf = appendMsg(buf, m)
		}
	}
	buf = append(buf, byte(len(s.wq)))
	for _, w := range s.wq {
		buf = append(buf, w.kind, w.sender, w.line, w.val)
	}
	buf = append(buf, s.ops)
	out := string(buf)
	*bp = buf
	encPool.Put(bp)
	return out
}

// chIdx addresses the directed channel src -> dst.
func chIdx(cfg Config, src, dst int) int { return src*(cfg.L1s+2) + dst }

// permuteInto writes into dst the state with L1 identities remapped by
// perm (core i becomes perm[i]). Directory and memory-controller node
// ids are fixed points. dst is fully overwritten (capacity reused) and
// must not alias s.
func (s *state) permuteInto(cfg Config, perm []int, dst *state) {
	n := cfg.L1s
	nodes := n + 2
	mapNode := func(b byte) byte {
		if int(b) < n {
			return byte(perm[b])
		}
		return b // dir, MC, noNode
	}
	mapMask := func(m uint16) uint16 {
		var out uint16
		for i := 0; i < n; i++ {
			if m&(1<<i) != 0 {
				out |= 1 << perm[i]
			}
		}
		return out
	}
	mapMsg := func(m msg) msg {
		m.req = mapNode(m.req)
		return m
	}
	dst.memVal = append(dst.memVal[:0], s.memVal...)
	dst.memVer = append(dst.memVer[:0], s.memVer...)
	dst.curVer = append(dst.curVer[:0], s.curVer...)
	dst.curVal = append(dst.curVal[:0], s.curVal...)
	dst.ops = s.ops
	if cap(dst.l1) < len(s.l1) {
		dst.l1 = make([]l1Line, len(s.l1))
	}
	dst.l1 = dst.l1[:len(s.l1)]
	if cap(dst.seen) < len(s.seen) {
		dst.seen = make([]byte, len(s.seen))
	}
	dst.seen = dst.seen[:len(s.seen)]
	for c := 0; c < n; c++ {
		for ln := 0; ln < cfg.Lines; ln++ {
			dst.l1[perm[c]*cfg.Lines+ln] = s.l1[c*cfg.Lines+ln]
			dst.seen[perm[c]*cfg.Lines+ln] = s.seen[c*cfg.Lines+ln]
		}
	}
	if cap(dst.dir) < len(s.dir) {
		dst.dir = make([]dirLine, len(s.dir))
	}
	dst.dir = dst.dir[:len(s.dir)]
	for i := range s.dir {
		def := dst.dir[i].deferred
		dst.dir[i] = s.dir[i]
		d := &dst.dir[i]
		d.deferred = append(def[:0], s.dir[i].deferred...)
		d.sharers = mapMask(d.sharers)
		d.staleW = mapMask(d.staleW)
		d.owner = mapNode(d.owner)
		d.tReq = mapNode(d.tReq)
		d.tAckIDs = mapMask(d.tAckIDs)
		for j := range d.deferred {
			d.deferred[j] = mapMsg(d.deferred[j])
		}
	}
	if len(dst.chans) != len(s.chans) {
		dst.chans = make([][]msg, len(s.chans))
	}
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			src, dst2 := a, b
			if a < n {
				src = perm[a]
			}
			if b < n {
				dst2 = perm[b]
			}
			ch := s.chans[a*nodes+b]
			out := dst.chans[src*nodes+dst2][:0]
			for _, m := range ch {
				out = append(out, mapMsg(m))
			}
			dst.chans[src*nodes+dst2] = out
		}
	}
	dst.wq = dst.wq[:0]
	for _, w := range s.wq {
		w.sender = mapNode(w.sender)
		dst.wq = append(dst.wq, w)
	}
	dst.normalize()
}

// remapSet is a small sorted set of byte values used to renormalize
// counters order-preservingly without allocating: collected values map
// to base+rank. It lives on the stack of renorm, which runs once per
// permutation per state — the hottest path in the checker.
type remapSet struct {
	vals [64]byte
	n    int
}

func (r *remapSet) add(v byte) {
	i := 0
	for i < r.n && r.vals[i] < v {
		i++
	}
	if i < r.n && r.vals[i] == v {
		return
	}
	copy(r.vals[i+1:r.n+1], r.vals[i:r.n])
	r.vals[i] = v
	r.n++
}

func (r *remapSet) apply(v, base byte) byte {
	for i := 0; i < r.n; i++ {
		if r.vals[i] == v {
			return base + byte(i)
		}
	}
	return v // unreachable: every applied value was collected
}

// renorm rewrites request IDs and data versions order-preservingly so
// that states differing only in the absolute values of these counters
// collapse. Request IDs are renormalized per (core, line) — matching
// is only ever done against that core's own outstanding request.
// Versions are renormalized globally per line over every field that
// holds one; the remap is strictly monotone, so every comparison the
// semantics performs (equality against curVer, >= against seen) is
// preserved.
func (s *state) renorm(cfg Config) {
	n := cfg.L1s
	nodes := n + 2
	// One collect sweep and one apply sweep over the channels cover
	// every (core, line) id set and per-line version set at once; the
	// per-combination sets live in fixed-size stack arrays (L1s <= 4,
	// Lines <= 2).
	var ids [8]remapSet  // [core*Lines+line]
	var vers [2]remapSet // [line]
	// --- collect ---
	for c := 0; c < n; c++ {
		for ln := 0; ln < cfg.Lines; ln++ {
			L := &s.l1[c*cfg.Lines+ln]
			if L.pend {
				ids[c*cfg.Lines+ln].add(L.pReqID)
			}
			if L.st != sI {
				vers[ln].add(L.ver)
			}
			if L.vic {
				vers[ln].add(L.vicVer)
			}
			vers[ln].add(s.seen[c*cfg.Lines+ln])
		}
	}
	for ln := 0; ln < cfg.Lines; ln++ {
		d := &s.dir[ln]
		if int(d.tReq) < n && d.busy != bNone {
			ids[int(d.tReq)*cfg.Lines+ln].add(d.tReqID)
		}
		if d.exists && d.hasData {
			vers[ln].add(d.ver)
		}
		vers[ln].add(s.memVer[ln])
		vers[ln].add(s.curVer[ln])
		for i := range d.deferred {
			if msgCarriesVer(d.deferred[i].typ) {
				vers[ln].add(d.deferred[i].ver)
			}
		}
	}
	forEachMsg(s, nodes, func(src, dst int, m *msg) {
		if o := ownerOfReqID(m, src, dst, n); o >= 0 {
			ids[o*cfg.Lines+int(m.line)].add(m.reqID)
		}
		if msgCarriesVer(m.typ) {
			vers[m.line].add(m.ver)
		}
	})
	// --- apply ---
	for c := 0; c < n; c++ {
		for ln := 0; ln < cfg.Lines; ln++ {
			L := &s.l1[c*cfg.Lines+ln]
			if L.pend {
				L.pReqID = ids[c*cfg.Lines+ln].apply(L.pReqID, 1)
			}
			if L.st != sI {
				L.ver = vers[ln].apply(L.ver, 0)
			} else {
				L.ver = 0
			}
			if L.vic {
				L.vicVer = vers[ln].apply(L.vicVer, 0)
			}
			s.seen[c*cfg.Lines+ln] = vers[ln].apply(s.seen[c*cfg.Lines+ln], 0)
		}
	}
	for ln := 0; ln < cfg.Lines; ln++ {
		d := &s.dir[ln]
		if int(d.tReq) < n && d.busy != bNone {
			d.tReqID = ids[int(d.tReq)*cfg.Lines+ln].apply(d.tReqID, 1)
		}
		if d.exists && d.hasData {
			d.ver = vers[ln].apply(d.ver, 0)
		} else {
			d.ver = 0
		}
		s.memVer[ln] = vers[ln].apply(s.memVer[ln], 0)
		s.curVer[ln] = vers[ln].apply(s.curVer[ln], 0)
		for i := range d.deferred {
			if msgCarriesVer(d.deferred[i].typ) {
				d.deferred[i].ver = vers[ln].apply(d.deferred[i].ver, 0)
			}
		}
	}
	forEachMsg(s, nodes, func(src, dst int, m *msg) {
		if o := ownerOfReqID(m, src, dst, n); o >= 0 {
			m.reqID = ids[o*cfg.Lines+int(m.line)].apply(m.reqID, 1)
		}
		if msgCarriesVer(m.typ) {
			m.ver = vers[m.line].apply(m.ver, 0)
		}
	})
}

// ownerOfReqID attributes a message's reqID to the L1 whose request
// sequence produced it, or -1 when the message carries none.
func ownerOfReqID(m *msg, src, dst, n int) int {
	switch m.typ {
	case mGetS, mGetX:
		return src // requests travel L1 -> dir
	case mDataS, mDataE, mDataM, mWirUpgr, mNACK, mWDiscard:
		if dst < n {
			return dst // grants and bounces travel dir -> requester
		}
	case mDataOwnerS, mDataOwnerM:
		if dst < n {
			return dst // owner -> requester
		}
	case mFwdGetS, mFwdGetX:
		return int(m.req) // carries the original requester's id
	}
	return -1
}

// msgCarriesVer reports whether a message type's ver field is live.
func msgCarriesVer(typ byte) bool {
	switch typ {
	case mDataS, mDataE, mDataM, mDataOwnerS, mDataOwnerM, mWirUpgr,
		mCopyBack, mRecallAck, mPutM, mMemData, mMemWrite:
		return true
	}
	return false
}

func forEachMsg(s *state, nodes int, fn func(src, dst int, m *msg)) {
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			ch := s.chans[a*nodes+b]
			for i := range ch {
				fn(a, b, &ch[i])
			}
		}
	}
}

// canonical produces the symmetry-reduced canonical key: the state is
// renormalized, then minimized over every permutation of the L1
// identities. The returned state is the canonical representative (the
// permuted+renormalized state whose encoding is minimal).
func canonical(cfg Config, s *state) (string, *state) {
	best := s.clone()
	best.normalize()
	best.renorm(cfg)
	bestKey := best.encode(cfg)
	perms := permutations(cfg.L1s)
	cand := statePool.Get().(*state)
	for _, perm := range perms {
		if identity(perm) {
			continue
		}
		s.permuteInto(cfg, perm, cand)
		cand.renorm(cfg)
		if k := cand.encode(cfg); k < bestKey {
			bestKey = k
			best, cand = cand, best
		}
	}
	statePool.Put(cand)
	return bestKey, best
}

func identity(perm []int) bool {
	for i, v := range perm {
		if i != v {
			return false
		}
	}
	return true
}

var permCache = map[int][][]int{}

func permutations(n int) [][]int {
	if p, ok := permCache[n]; ok {
		return p
	}
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	permCache[n] = out
	return out
}
