// Package mcheck is an explicit-state model checker for the WiDir
// coherence protocol (DESIGN.md §15). It explores every reachable
// state of a small configurable model — one directory, a handful of
// L1s, one or two cache lines, symbolic data values, and a bounded
// wired network — under an operational semantics transcribed from
// internal/coherence's home and L1 controllers. The transition
// relation is not trusted blindly: every state change a handler makes
// is validated per hop against the protomodel FSMs (the same spec
// `widir-model -check` conforms the implementation to), so a spec row
// that goes missing, or a handler path the spec never sanctioned,
// surfaces as a checkable violation with a concrete trace.
//
// Four invariant families are checked:
//
//   - swmr: at most one wired owner (E/M) per line, and no other
//     valid copy while an owner exists (W readers under the wireless
//     regime are exempt by design — that is WiDir's relaxation).
//   - integrity: symbolic-value coherence. Every write serializes as
//     a fresh version; a wired store must land on the current
//     version (lost-update detection) and every load a core performs
//     must observe a version no older than anything that core has
//     already seen. Quiescent states must agree cache/LLC/memory.
//   - deadlock: whenever work is in flight (messages queued, wireless
//     transmissions pending, cores or the directory mid-transaction)
//     at least one non-issue transition is enabled.
//   - liveness: from every reachable state a quiescent state remains
//     reachable (EF quiescence on the reachability graph), and in
//     particular every busy:w-to-s transaction can complete — the
//     W-demotion handshake cannot wedge.
//
// A fault mode mirrors internal/fault's wireless-corruption class: an
// unprivileged wireless store may be corrupted in flight, which
// bounces the writer into a wired retry and counts a failure at the
// home, demoting the line W->S after FaultDemoteAfter strikes (the
// PR 4 recovery rules). Privileged broadcasts (directory-initiated
// WirDwgr/WirInv and the upgrade tone handshake) retry until they
// succeed and are modeled fault-free.
//
// State explosion is kept in check by canonical hashing (states are
// serialized to a minimal byte string), symmetry reduction over L1
// identities (the canonical form is minimized over all permutations
// of the cores), order-preserving renormalization of request IDs and
// data versions, and a partial-order reduction that commits "pure
// drop" deliveries (a message whose delivery provably changes nothing
// but its own removal) immediately instead of interleaving them.
//
// Counterexamples are replayed through internal/obs, so a violation
// comes with the same JSONL / Perfetto trace artifacts the simulator
// itself emits.
package mcheck

import (
	"fmt"
	"sort"

	"repro/internal/protomodel"
)

// Config sizes the model. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	L1s    int // number of L1 caches (2 or 3)
	Lines  int // number of cache lines (1 or 2)
	Values int // distinct symbolic store values (>= 1)

	// Reorder bounds the wired network: each directed channel holds at
	// most Reorder in-flight messages for the purpose of gating
	// issue-side transitions (core requests and spontaneous
	// evictions). Protocol-internal sends are never blocked, so the
	// directory can always drain. Delivery is FIFO per channel —
	// the wired NoC preserves point-to-point order, and the protocol
	// depends on it (a GetS overtaking its own PutS would revive an
	// untracked sharer).
	Reorder int

	// OpBudget bounds the total number of spontaneous operations —
	// core loads, core stores, and cache/directory evictions — one
	// exploration may perform, the way Murphi-style protocol models
	// bound their driver processes. Protocol-internal transitions
	// (deliveries, retries, broadcasts, acks) are never budgeted, so
	// every race among in-flight work is still explored, and the
	// system can always drain to quiescence. Six operations reach
	// every WiDir regime: the S->W upgrade needs three, UpdateCount
	// decay five, and fault demotion and the W->S re-demotion of a
	// re-upgraded group six.
	OpBudget int

	MaxWiredSharers  int  // directory threshold for the S->W upgrade
	UpdateCountMax   int  // W self-invalidation decay threshold
	FaultDemoteAfter int  // wireless faults before W->S demotion
	Fault            bool // enable the wireless-corruption transitions
	DirEvict         bool // model directory/LLC capacity evictions
	MaxStates        int  // exploration cap (0 = DefaultMaxStates)
}

// DefaultMaxStates bounds exploration when Config.MaxStates is zero.
const DefaultMaxStates = 4_000_000

// DefaultConfig is the model the CLI and CI explore: 3 L1s, one line,
// two symbolic values, channel bound 2 — big enough to exercise every
// protocol regime (wired MESI, S->W upgrade, wireless updates, decay,
// W->S demotion, directory eviction) while staying exhaustively
// explorable in about a minute (~1M canonical states).
func DefaultConfig() Config {
	return Config{
		L1s:              3,
		Lines:            1,
		Values:           2,
		Reorder:          2,
		OpBudget:         6,
		MaxWiredSharers:  1,
		UpdateCountMax:   2,
		FaultDemoteAfter: 2,
		DirEvict:         true,
	}
}

// Violation is one invariant failure, with the action path that
// reproduces it from the initial state.
type Violation struct {
	Kind string // "swmr", "integrity", "deadlock", "liveness", "relation", "protocol"
	Msg  string
	Path []string // action labels, initial state first

	acts []action // the same path, replayable by Checker.Counterexample
}

func (v *Violation) Error() string {
	return fmt.Sprintf("%s: %s (after %d steps)", v.Kind, v.Msg, len(v.Path))
}

// Families lists the invariant families in reporting order.
var Families = []string{"swmr", "integrity", "deadlock", "liveness", "relation", "protocol"}

// Result summarizes one exhaustive exploration.
type Result struct {
	States    int
	Edges     int
	MaxDepth  int
	Quiescent int // states with no work in flight
	Violation *Violation
	// Coverage counts protocol regimes visited, keyed by a stable
	// name (e.g. "dir:DW", "wtos-commit", "decay"); tests assert the
	// model is not vacuously clean.
	Coverage map[string]int
}

// Clean reports whether every family held.
func (r *Result) Clean() bool { return r.Violation == nil }

// FamilyVerdicts maps each family to "clean" or the violation text.
func (r *Result) FamilyVerdicts() map[string]string {
	out := make(map[string]string, len(Families))
	for _, f := range Families {
		out[f] = "clean"
	}
	if r.Violation != nil {
		out[r.Violation.Kind] = r.Violation.Msg
	}
	return out
}

// rel is a hash-indexed view of one protomodel machine's transition
// relation, with "*" wildcard rows expanded at query time.
type rel struct {
	name    string
	next    map[string]map[string]bool // from\x00event -> next set
	covered map[string]bool            // from\x00event with any row or pair
}

func newRel(m *protomodel.Machine) *rel {
	r := &rel{name: m.Name, next: map[string]map[string]bool{}, covered: map[string]bool{}}
	for _, t := range m.Transitions {
		k := t.From + "\x00" + t.Event
		if r.next[k] == nil {
			r.next[k] = map[string]bool{}
		}
		r.next[k][t.Next] = true
		r.covered[k] = true
	}
	for _, p := range m.Pairs {
		r.covered[p.State+"\x00"+p.Event] = true
	}
	return r
}

func (r *rel) allows(from, event, to string) bool {
	if r.next[from+"\x00"+event][to] {
		return true
	}
	return r.next["*\x00"+event][to]
}

func (r *rel) hasRow(from, event string) bool {
	return r.covered[from+"\x00"+event] || r.covered["*\x00"+event]
}

// Checker explores one configured model against one extracted (or
// spec-derived) protocol model.
type Checker struct {
	cfg  Config
	dirM *rel
	l1M  *rel
}

// New builds a Checker. The model must contain "dir" and "l1"
// machines (protomodel.ModelFromSpec(protomodel.EmbeddedSpec()) is
// the canonical source).
func New(cfg Config, model *protomodel.Model) (*Checker, error) {
	if cfg.L1s < 2 || cfg.L1s > 4 {
		return nil, fmt.Errorf("mcheck: L1s must be 2..4, got %d", cfg.L1s)
	}
	if cfg.Lines < 1 || cfg.Lines > 2 {
		return nil, fmt.Errorf("mcheck: Lines must be 1..2, got %d", cfg.Lines)
	}
	if cfg.Values < 1 || cfg.Values > 3 {
		return nil, fmt.Errorf("mcheck: Values must be 1..3, got %d", cfg.Values)
	}
	if cfg.Reorder < 1 {
		return nil, fmt.Errorf("mcheck: Reorder must be >= 1, got %d", cfg.Reorder)
	}
	if cfg.OpBudget < 1 || cfg.OpBudget > 16 {
		return nil, fmt.Errorf("mcheck: OpBudget must be 1..16, got %d", cfg.OpBudget)
	}
	if cfg.MaxWiredSharers < 1 || cfg.MaxWiredSharers >= cfg.L1s {
		return nil, fmt.Errorf("mcheck: MaxWiredSharers must be 1..L1s-1, got %d", cfg.MaxWiredSharers)
	}
	if cfg.UpdateCountMax < 1 {
		return nil, fmt.Errorf("mcheck: UpdateCountMax must be >= 1, got %d", cfg.UpdateCountMax)
	}
	if cfg.FaultDemoteAfter < 1 {
		return nil, fmt.Errorf("mcheck: FaultDemoteAfter must be >= 1, got %d", cfg.FaultDemoteAfter)
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = DefaultMaxStates
	}
	dm := model.Machine("dir")
	lm := model.Machine("l1")
	if dm == nil || lm == nil {
		return nil, fmt.Errorf("mcheck: model must define dir and l1 machines")
	}
	return &Checker{cfg: cfg, dirM: newRel(dm), l1M: newRel(lm)}, nil
}

// SortedCoverage renders the coverage counters deterministically as
// "name=count" strings.
func (r *Result) SortedCoverage() []string { return sortedCoverage(r.Coverage) }

// sortedCoverage renders coverage counters deterministically.
func sortedCoverage(cov map[string]int) []string {
	keys := make([]string, 0, len(cov))
	for k := range cov {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%d", k, cov[k])
	}
	return out
}
