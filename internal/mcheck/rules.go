package mcheck

import (
	"fmt"

	"repro/internal/addrspace"
	"repro/internal/obs"
)

// Action kinds. An action is one atomic model transition.
const (
	actDeliver  byte = iota // deliver head of wired channel a->b
	actAir                  // serialize the wireless transmission (a=kind, b=sender, c=line, d=val)
	actCorrupt              // fault-inject the wireless store (b=sender, c=line, d=val)
	actTone                 // commit the S->W upgrade once tones are quiet (c=line)
	actIssue                // core b issues op a (opLoad/opStore) on line c with value d
	actEvictL1              // core b spontaneously evicts line c
	actEvictDir             // directory evicts line c
)

type action struct {
	kind       byte
	a, b, c, d byte
}

func (a action) String() string {
	switch a.kind {
	case actDeliver:
		return fmt.Sprintf("recv %d->%d", a.a, a.b)
	case actAir:
		return fmt.Sprintf("air %s sender=%d line=%d", wNames[a.a], int8(a.b), a.c)
	case actCorrupt:
		return fmt.Sprintf("corrupt WirUpd sender=%d line=%d", a.b, a.c)
	case actTone:
		return fmt.Sprintf("tone-commit line=%d", a.c)
	case actIssue:
		if a.a == opLoad {
			return fmt.Sprintf("issue load core=%d line=%d", a.b, a.c)
		}
		return fmt.Sprintf("issue store core=%d line=%d val=%d", a.b, a.c, a.d)
	case actEvictL1:
		return fmt.Sprintf("evict-l1 core=%d line=%d", a.b, a.c)
	case actEvictDir:
		return fmt.Sprintf("evict-dir line=%d", a.c)
	}
	return "?"
}

// ctx is one transition application in progress. event is the current
// FSM event name used to validate every state change the handlers
// perform against the protomodel relation.
type ctx struct {
	ck    *Checker
	cfg   Config
	s     *state
	event string
	viol  *Violation
	emit  func(e obs.Event) // non-nil only during counterexample replay
	cov   map[string]int    // non-nil only when collecting coverage
	cycle uint64            // replay step, stamped into emitted events
}

// apply executes act on a clone of s and returns the successor (with
// any violation the step itself detected). The caller owns invariant
// checks over the resulting state.
func (ck *Checker) apply(s *state, act action, emit func(obs.Event), cov map[string]int, cycle uint64) (*state, *Violation) {
	x := &ctx{ck: ck, cfg: ck.cfg, s: s.clone(), emit: emit, cov: cov, cycle: cycle}
	switch act.kind {
	case actDeliver:
		x.deliver(int(act.a), int(act.b))
	case actAir:
		x.air(act)
	case actCorrupt:
		x.corrupt(act)
	case actTone:
		x.toneCommit(int(act.c))
	case actIssue:
		x.event = coreEvent(act.a)
		x.spendOp()
		x.access(int(act.b), int(act.c), act.a, act.d)
	case actEvictL1:
		x.event = "Evict"
		x.spendOp()
		x.evictL1(int(act.b), int(act.c))
	case actEvictDir:
		x.event = "Evict"
		x.spendOp()
		x.evictDir(int(act.c))
	}
	x.s.normalize()
	return x.s, x.viol
}

func coreEvent(op byte) string {
	if op == opLoad {
		return "CoreLoad"
	}
	return "CoreStore"
}

// spendOp consumes one unit of the operation budget.
func (x *ctx) spendOp() {
	if x.s.ops > 0 {
		x.s.ops--
	}
}

// ---------- small helpers ----------

func (x *ctx) dirNode() int { return x.cfg.L1s }
func (x *ctx) mcNode() int  { return x.cfg.L1s + 1 }

func (x *ctx) line(core, li int) *l1Line { return &x.s.l1[core*x.cfg.Lines+li] }
func (x *ctx) seen(core, li int) *byte   { return &x.s.seen[core*x.cfg.Lines+li] }

func (x *ctx) chn(src, dst int) *[]msg { return &x.s.chans[chIdx(x.cfg, src, dst)] }

func (x *ctx) violate(kind, format string, args ...any) {
	if x.viol == nil {
		x.viol = &Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)}
	}
}

func (x *ctx) failProto(format string, args ...any) { x.violate("protocol", format, args...) }

func (x *ctx) count(key string) {
	if x.cov != nil {
		x.cov[key]++
	}
}

func (x *ctx) note(k obs.Kind, node, other int, li byte, a, b uint64) {
	if x.emit != nil {
		x.emit(obs.Event{Cycle: x.cycle, Kind: k, Node: int32(node), Other: int32(other),
			Line: addrspace.Line(li), A: a, B: b})
	}
}

func (x *ctx) send(src, dst int, m msg) {
	*x.chn(src, dst) = append(*x.chn(src, dst), m)
	x.note(obs.EvMsgSend, src, dst, m.line, uint64(m.typ), 0)
}

// clearTxn resets the in-flight transaction bookkeeping when a busy
// entry returns to a stable state, so stale bytes cannot split
// otherwise-identical canonical states.
func clearTxn(d *dirLine) {
	d.tReq, d.tReqType, d.tReqID = noNode, 0, 0
	d.tAcks, d.tAckIDs, d.tNewCount, d.tWaitTone = 0, 0, 0, false
}

func popcount(m uint16) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// ---------- FSM relation validation ----------

func dirFSMName(d *dirLine) string {
	if !d.exists {
		return dirNames[dI] // an absent entry re-enters the machine at DI
	}
	if d.busy != bNone {
		return busyNames[d.busy]
	}
	return dirNames[d.st]
}

func (x *ctx) checkHop(r *rel, from, to string) {
	if x.viol != nil {
		return
	}
	if !r.allows(from, x.event, to) {
		x.violate("relation", "machine %s: hop %s --%s--> %s has no spec row", r.name, from, x.event, to)
	}
}

// dirSet applies a directory FSM change and validates the hop.
func (x *ctx) dirSet(li int, st, busy byte) {
	d := &x.s.dir[li]
	from := dirFSMName(d)
	d.st, d.busy = st, busy
	to := dirFSMName(d)
	if from == to {
		return
	}
	x.count("dir:" + to)
	x.checkHop(x.ck.dirM, from, to)
}

// l1Set applies an L1 FSM change and validates the hop.
func (x *ctx) l1Set(core, li int, st byte) {
	L := x.line(core, li)
	from := l1Names[L.st]
	L.st = st
	if from == l1Names[st] {
		return
	}
	x.count("l1:" + l1Names[st])
	x.checkHop(x.ck.l1M, from, l1Names[st])
}

// coverStable flags a delivery that changed nothing in a stable state
// yet has no spec row or covered pair sanctioning the (state, event).
func (x *ctx) coverStable(r *rel, from string) {
	if x.viol != nil {
		return
	}
	if !r.hasRow(from, x.event) {
		x.violate("relation", "machine %s: event %s in state %s is unspecified", r.name, x.event, from)
	}
}

// invalidate fully clears an L1 line (victim buffer untouched).
func (x *ctx) invalidateL1(core, li int) {
	x.l1Set(core, li, sI)
	L := x.line(core, li)
	L.val, L.ver, L.upd = 0, 0, 0
	L.dirty, L.nonEvict = false, false
}

func (x *ctx) clearPend(L *l1Line) {
	L.pend, L.pKind, L.pVal, L.pShare, L.pTone, L.pInv, L.pReqID = false, 0, 0, false, false, false, 0
}

// nextReqID allocates a request id distinct from everything this
// (core, line) still has outstanding. IDs are renormalized
// order-preservingly at canonicalization, so max+1 is stable.
func (x *ctx) nextReqID(core, li int) byte {
	max := byte(0)
	consider := func(id byte) {
		if id > max {
			max = id
		}
	}
	L := x.line(core, li)
	if L.pend {
		consider(L.pReqID)
	}
	d := &x.s.dir[li]
	if d.busy != bNone && d.tReq == byte(core) {
		consider(d.tReqID)
	}
	nodes := x.cfg.L1s + 2
	forEachMsg(x.s, nodes, func(src, dst int, m *msg) {
		if int(m.line) == li && ownerOfReqID(m, src, dst, x.cfg.L1s) == core {
			consider(m.reqID)
		}
	})
	return max + 1
}

// hasQueuedUpd reports whether core has an un-serialized wireless
// store for li, returning its queue index.
func (x *ctx) queuedUpd(core, li int) int {
	for i, w := range x.s.wq {
		if w.kind == wUpd && w.sender == byte(core) && int(w.line) == li {
			return i
		}
	}
	return -1
}

func (x *ctx) removeWtx(i int) wtx {
	w := x.s.wq[i]
	x.s.wq = append(x.s.wq[:i:i], x.s.wq[i+1:]...)
	return w
}

// jammed mirrors the directory's line-jamming predicate: wireless
// transactions that reconfigure the sharing regime close the channel
// to unprivileged stores.
func (x *ctx) jammed(li int) bool {
	switch x.s.dir[li].busy {
	case bSToW, bWAddSharer, bWToS:
		return true
	}
	return false
}

// toneQuiet reports no L1 holding the wireless tone.
func (x *ctx) toneQuiet() bool {
	for i := range x.s.l1 {
		if x.s.l1[i].pTone {
			return false
		}
	}
	return true
}

// ---------- ghost-value integrity ----------

// serializeWrite records a new globally-serialized version of li with
// value v and returns the version.
func (x *ctx) serializeWrite(li int, v byte) byte {
	x.s.curVer[li]++
	x.s.curVal[li] = v
	return x.s.curVer[li]
}

// observeRead checks a load completion on core: per-core version
// monotonicity, and agreement with the ghost log when the version is
// current.
func (x *ctx) observeRead(core, li int, val, ver byte) {
	sp := x.seen(core, li)
	if ver < *sp {
		x.violate("integrity", "core %d read line %d at version %d after observing version %d (non-monotone)", core, li, ver, *sp)
		return
	}
	if ver == x.s.curVer[li] && val != x.s.curVal[li] {
		x.violate("integrity", "core %d read line %d value %d at current version %d, expected %d", core, li, val, ver, x.s.curVal[li])
		return
	}
	*sp = ver
}

// ---------- core issue side (coherence.L1.Access) ----------

func (x *ctx) access(core, li int, op, val byte) {
	L := x.line(core, li)
	pre := l1Names[L.st]
	x.accessInner(core, li, op, val)
	if x.viol == nil && l1Names[x.line(core, li).st] == pre {
		x.coverStable(x.ck.l1M, pre)
	}
}

func (x *ctx) accessInner(core, li int, op, val byte) {
	L := x.line(core, li)
	if L.st == sI {
		x.miss(core, li, op, val, false)
		return
	}
	if op == opLoad {
		if L.st == sW {
			L.upd = 0 // a local touch resets the decay countdown
		}
		x.observeRead(core, li, L.val, L.ver)
		return
	}
	switch L.st {
	case sE, sM:
		if L.ver != x.s.curVer[li] {
			x.violate("integrity", "core %d stored to line %d over version %d, current is %d (lost update)", core, li, L.ver, x.s.curVer[li])
			return
		}
		x.l1Set(core, li, sM)
		L = x.line(core, li)
		L.val, L.ver, L.dirty = val, x.serializeWrite(li, val), true
		*x.seen(core, li) = L.ver
	case sW:
		x.wirelessStore(core, li, val)
	case sS:
		x.miss(core, li, op, val, true)
	}
}

func (x *ctx) miss(core, li int, op, val byte, isSharer bool) {
	L := x.line(core, li)
	L.pend, L.pKind, L.pVal, L.pShare, L.pTone, L.pInv = true, op, val, isSharer, false, false
	L.pReqID = x.nextReqID(core, li)
	if isSharer {
		L.nonEvict = true // pin the S copy the upgrade path relies on
	}
	typ := byte(mGetS)
	if op == opStore {
		typ = mGetX
	}
	x.note(obs.EvL1Miss, core, x.dirNode(), byte(li), uint64(typ), 0)
	x.send(core, x.dirNode(), msg{typ: typ, line: byte(li), req: byte(core), reqID: L.pReqID, isSharer: isSharer})
}

// wirelessStore queues an unprivileged fine-grain wireless write.
func (x *ctx) wirelessStore(core, li int, val byte) {
	x.s.wq = append(x.s.wq, wtx{kind: wUpd, sender: byte(core), line: byte(li), val: val})
	x.count("wq:upd")
}

// ---------- spontaneous evictions ----------

func (x *ctx) evictL1(core, li int) {
	L := x.line(core, li)
	redispatch := false
	var redisVal byte
	if i := x.queuedUpd(core, li); i >= 0 {
		w := x.removeWtx(i)
		redispatch, redisVal = true, w.val
	}
	st, val, ver := L.st, L.val, L.ver
	x.invalidateL1(core, li)
	switch st {
	case sS:
		x.send(core, x.dirNode(), msg{typ: mPutS, line: byte(li)})
	case sE:
		if L.vic {
			x.failProto("core %d evicted line %d with its victim buffer still occupied", core, li)
			return
		}
		L.vic, L.vicVal, L.vicVer, L.vicDirty = true, val, ver, false
		x.send(core, x.dirNode(), msg{typ: mPutE, line: byte(li)})
	case sM:
		if L.vic {
			x.failProto("core %d evicted line %d with its victim buffer still occupied", core, li)
			return
		}
		L.vic, L.vicVal, L.vicVer, L.vicDirty = true, val, ver, true
		x.send(core, x.dirNode(), msg{typ: mPutM, line: byte(li), hasData: true, val: val, ver: ver})
	case sW:
		x.send(core, x.dirNode(), msg{typ: mPutW, line: byte(li)})
	}
	if redispatch {
		x.event = "CoreStore"
		x.access(core, li, opStore, redisVal)
	}
}

func (x *ctx) evictDir(li int) {
	d := &x.s.dir[li]
	x.count("dir-evict")
	switch d.st {
	case dI:
		x.finishDirEvict(li)
	case dS:
		x.dirSet(li, d.st, bEvict)
		acks := 0
		for c := 0; c < x.cfg.L1s; c++ {
			if d.sharers&(1<<c) != 0 {
				x.send(x.dirNode(), c, msg{typ: mInv, line: byte(li)})
				acks++
			}
		}
		d.tAcks = int8(acks)
		if acks == 0 {
			x.finishDirEvict(li)
		}
	case dO:
		x.dirSet(li, d.st, bEvict)
		d.tAcks = 1
		x.send(x.dirNode(), int(d.owner), msg{typ: mRecall, line: byte(li)})
	case dW:
		x.dirSet(li, d.st, bEvict)
		x.s.wq = append(x.s.wq, wtx{kind: wInv, sender: noNode, line: byte(li)})
		x.note(obs.EvWInv, x.dirNode(), -1, byte(li), 0, 0)
	}
}

// finishDirEvict writes back and drops the entry, acking any puts
// that were deferred behind the eviction.
func (x *ctx) finishDirEvict(li int) {
	d := &x.s.dir[li]
	x.writebackIfDirty(li)
	deferred := d.deferred
	x.dirSet(li, dI, bNone)
	*d = dirLine{owner: noNode, tReq: noNode}
	for _, m := range deferred {
		x.ackPut(li, int(m.req))
	}
}

// ---------- wired network ----------

func (x *ctx) deliver(src, dst int) {
	ch := x.chn(src, dst)
	if len(*ch) == 0 {
		x.failProto("deliver on empty channel %d->%d", src, dst)
		return
	}
	m := (*ch)[0]
	*ch = append([]msg(nil), (*ch)[1:]...)
	x.note(obs.EvMsgRecv, dst, src, m.line, uint64(m.typ), 0)
	x.event = mtNames[m.typ]
	switch {
	case dst == x.mcNode():
		x.mcDeliver(src, m)
	case dst == x.dirNode():
		x.homeDeliver(src, m)
	default:
		x.l1Deliver(dst, src, m)
	}
}

// mcDeliver is the memory controller: a flat backing store.
func (x *ctx) mcDeliver(src int, m msg) {
	switch m.typ {
	case mMemRead:
		x.send(x.mcNode(), src, msg{typ: mMemData, line: m.line,
			hasData: true, val: x.s.memVal[m.line], ver: x.s.memVer[m.line]})
	case mMemWrite:
		x.s.memVal[m.line], x.s.memVer[m.line] = m.val, m.ver
	default:
		x.failProto("memory controller received %s", mtNames[m.typ])
	}
}

// ---------- directory (coherence.Home) ----------

func (x *ctx) homeDeliver(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	pre := ""
	if d.exists && d.busy == bNone {
		pre = dirNames[d.st]
	}
	switch m.typ {
	case mGetS, mGetX:
		x.reprocess(src, m)
	case mPutS, mPutE, mPutM, mPutW:
		x.processOrDefer(src, m)
	case mInvAck, mCopyBack, mXferAck, mRecallAck, mWirUpgrAck, mWirDwgrAck:
		x.processAck(src, m)
	case mMemData:
		x.processMemData(m)
	default:
		x.failProto("directory received %s from %d", mtNames[m.typ], src)
	}
	if x.viol == nil && pre != "" && dirFSMName(&x.s.dir[li]) == pre {
		x.coverStable(x.ck.dirM, pre)
	}
}

func (x *ctx) nack(dst, li int, reqID byte) {
	x.note(obs.EvNACK, x.dirNode(), dst, byte(li), 0, 0)
	x.count("nack")
	x.send(x.dirNode(), dst, msg{typ: mNACK, line: byte(li), reqID: reqID})
}

func (x *ctx) reprocess(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	if !d.exists {
		d.exists, d.st, d.owner, d.tReq = true, dI, noNode, noNode
	}
	if d.busy != bNone {
		x.nack(src, li, m.reqID)
		return
	}
	switch d.st {
	case dI:
		x.serveUncached(src, m)
	case dS:
		x.serveShared(src, m)
	case dO:
		x.serveOwned(src, m)
	case dW:
		x.serveWireless(src, m)
	}
}

func (x *ctx) serveUncached(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	if !d.hasData {
		d.tReq, d.tReqType, d.tReqID = byte(src), m.typ, m.reqID
		x.dirSet(li, d.st, bFetchMem)
		x.send(x.dirNode(), x.mcNode(), msg{typ: mMemRead, line: m.line})
		return
	}
	x.grantFromLLC(li, src, m.typ, m.reqID)
}

func (x *ctx) grantFromLLC(li, req int, reqType, reqID byte) {
	d := &x.s.dir[li]
	typ := byte(mDataE)
	if reqType == mGetX {
		typ = mDataM
		d.ownerDty = true
	} else {
		d.ownerDty = false
	}
	x.dirSet(li, dO, bNone)
	d.owner = byte(req)
	x.send(x.dirNode(), req, msg{typ: typ, line: byte(li), reqID: reqID,
		hasData: true, val: d.val, ver: d.ver})
}

func (x *ctx) serveShared(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	isSharer := d.sharers&(1<<src) != 0
	if m.typ == mGetS {
		if !isSharer && popcount(d.sharers)+1 > x.cfg.MaxWiredSharers {
			x.startSToW(src, m, byte(popcount(d.sharers)+1))
			return
		}
		d.sharers |= 1 << src
		x.send(x.dirNode(), src, msg{typ: mDataS, line: m.line, reqID: m.reqID,
			hasData: true, val: d.val, ver: d.ver})
		return
	}
	// GetX. An upgrade claiming a Shared copy this entry does not list
	// is provably stale (tracked-S plus per-source FIFO): discard with
	// notification instead of counting a never-joining core into a
	// fresh S->W upgrade.
	if m.isSharer && !isSharer {
		x.send(x.dirNode(), src, msg{typ: mWDiscard, line: m.line, reqID: m.reqID})
		x.count("wdiscard-ds")
		return
	}
	if !isSharer && popcount(d.sharers)+1 > x.cfg.MaxWiredSharers {
		x.startSToW(src, m, byte(popcount(d.sharers)+1))
		return
	}
	// GetX from a listed sharer (or within the wired budget):
	// invalidate everyone else and grant M.
	d.tReq, d.tReqType, d.tReqID = byte(src), m.typ, m.reqID
	x.dirSet(li, d.st, bInvAll)
	acks := 0
	for c := 0; c < x.cfg.L1s; c++ {
		if c != src && d.sharers&(1<<c) != 0 {
			x.send(x.dirNode(), c, msg{typ: mInv, line: m.line})
			acks++
		}
	}
	d.tAcks = int8(acks)
	if acks == 0 {
		x.finishInvAll(li)
	}
}

func (x *ctx) finishInvAll(li int) {
	d := &x.s.dir[li]
	req, reqID := int(d.tReq), d.tReqID
	clearTxn(d)
	x.dirSet(li, dO, bNone)
	d.sharers = 0
	d.owner, d.ownerDty = byte(req), true
	x.send(x.dirNode(), req, msg{typ: mDataM, line: byte(li), reqID: reqID,
		hasData: true, val: d.val, ver: d.ver})
	x.drainDeferred(li)
}

func (x *ctx) serveOwned(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	if byte(src) == d.owner {
		x.nack(src, li, m.reqID)
		return
	}
	d.tReq, d.tReqType, d.tReqID = byte(src), m.typ, m.reqID
	if m.typ == mGetS {
		x.dirSet(li, d.st, bFwdGetS)
		x.send(x.dirNode(), int(d.owner), msg{typ: mFwdGetS, line: m.line,
			req: byte(src), reqID: m.reqID})
		return
	}
	x.dirSet(li, d.st, bFwdGetX)
	x.send(x.dirNode(), int(d.owner), msg{typ: mFwdGetX, line: m.line,
		req: byte(src), reqID: m.reqID})
}

// serveWireless handles wired requests landing on a wireless line.
func (x *ctx) serveWireless(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	if m.typ == mGetX && m.isSharer {
		// The upgrade raced the S->W flip: the requester's copy is
		// already wireless — tell it to resolve locally.
		x.send(x.dirNode(), src, msg{typ: mWDiscard, line: m.line, reqID: m.reqID})
		x.count("wdiscard")
		return
	}
	d.tReq, d.tReqType, d.tReqID = byte(src), m.typ, m.reqID
	x.dirSet(li, d.st, bWAddSharer)
	x.send(x.dirNode(), src, msg{typ: mWirUpgr, line: m.line, reqID: m.reqID,
		needAck: true, hasData: true, val: d.val, ver: d.ver})
}

// startSToW begins the wired->wireless regime shift: grant the
// requester a W copy over the wire, flip the surviving S sharers with
// a privileged broadcast, and commit once the tone channel is quiet.
func (x *ctx) startSToW(src int, m msg, newCount byte) {
	li := int(m.line)
	d := &x.s.dir[li]
	d.tReq, d.tReqType, d.tReqID, d.tNewCount = byte(src), m.typ, m.reqID, newCount
	d.tWaitTone = false
	x.dirSet(li, d.st, bSToW)
	x.s.wq = append(x.s.wq, wtx{kind: wBrUpgr, sender: noNode, line: m.line})
	x.send(x.dirNode(), src, msg{typ: mWirUpgr, line: m.line, reqID: m.reqID,
		hasData: true, val: d.val, ver: d.ver})
	x.count("stow-start")
}

// processOrDefer routes put notices around a busy directory entry.
func (x *ctx) processOrDefer(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	m.req = byte(src)
	if !d.exists {
		x.ackPut(li, src)
		return
	}
	if d.busy != bNone {
		if x.consumeBusyPut(li, src, m) {
			return
		}
		d.deferred = append(d.deferred, m)
		x.count("defer")
		return
	}
	x.processPut(li, src, m)
}

// consumeBusyPut absorbs a put that doubles as a W->S downgrade
// response: the wireless sharer evicted instead of downgrading.
func (x *ctx) consumeBusyPut(li, src int, m msg) bool {
	d := &x.s.dir[li]
	if d.busy != bWToS || d.tAckIDs&(1<<src) != 0 {
		return false
	}
	if m.typ != mPutW {
		if d.staleW&(1<<src) == 0 {
			// Uncounted stale notice: ack and swallow without touching
			// the ack arithmetic, as the stable-DW path would.
			x.ackPut(li, src)
			x.count("stale-put-dw")
			return true
		}
		d.staleW &^= 1 << src
	}
	d.tAcks--
	x.ackPut(li, src)
	x.maybeFinishWToS(li)
	return true
}

func (x *ctx) ackPut(li, src int) {
	x.send(x.dirNode(), src, msg{typ: mPutAck, line: byte(li)})
}

func (x *ctx) processPut(li, src int, m msg) {
	d := &x.s.dir[li]
	switch d.st {
	case dI:
		// stale put; nothing tracked
	case dS:
		if m.typ != mPutW {
			d.sharers &^= 1 << src
			if d.sharers == 0 {
				x.dirSet(li, dI, bNone)
			}
		}
	case dO:
		if byte(src) != d.owner {
			break // stale put from a displaced owner
		}
		switch m.typ {
		case mPutE:
			d.owner = noNode
			x.dirSet(li, dI, bNone)
		case mPutM:
			d.owner = noNode
			d.hasData, d.dirty, d.val, d.ver = true, true, m.val, m.ver
			x.dirSet(li, dI, bNone)
		}
	case dW:
		if m.typ != mPutW {
			if d.staleW&(1<<src) == 0 {
				// A wired-era notice from a node deposed before the
				// wireless epoch began: swallow it, the sender was
				// never counted.
				x.count("stale-put-dw")
				break
			}
			d.staleW &^= 1 << src
		}
		if d.wcount == 0 {
			x.failProto("put %s from %d would make the wireless sharer count negative", mtNames[m.typ], src)
			return
		}
		d.wcount--
		if int(d.wcount) <= x.cfg.MaxWiredSharers {
			x.startWToS(li)
		}
	}
	x.ackPut(li, src)
}

// startWToS begins the wireless->wired demotion: broadcast WirDwgr
// and wait for every surviving wireless sharer to ack (or evict).
func (x *ctx) startWToS(li int) {
	d := &x.s.dir[li]
	d.tAcks, d.tAckIDs = int8(d.wcount), 0
	x.dirSet(li, d.st, bWToS)
	x.s.wq = append(x.s.wq, wtx{kind: wDwgr, sender: noNode, line: byte(li)})
	x.count("wtos-start")
	if d.tAcks == 0 {
		x.maybeFinishWToS(li)
	}
}

func (x *ctx) maybeFinishWToS(li int) {
	d := &x.s.dir[li]
	if int8(popcount(d.tAckIDs)) < d.tAcks {
		return
	}
	// Every expected sharer answered (or evicted): cancel the
	// downgrade broadcast if it never made it to the air.
	for i := 0; i < len(x.s.wq); i++ {
		if w := x.s.wq[i]; w.kind == wDwgr && int(w.line) == li {
			x.removeWtx(i)
			break
		}
	}
	survivors := d.tAckIDs
	d.wcount = 0
	d.staleW = 0
	d.sharers = survivors
	clearTxn(d)
	x.dirSet(li, dS, bNone)
	if survivors == 0 {
		x.dirSet(li, dI, bNone)
	}
	x.writebackIfDirty(li)
	x.note(obs.EvWDowngrade, x.dirNode(), -1, byte(li), uint64(popcount(survivors)), 0)
	x.count("wtos-commit")
	x.drainDeferred(li)
}

func (x *ctx) processAck(src int, m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	if !d.exists || d.busy == bNone {
		x.failProto("ack %s from %d with no transaction", mtNames[m.typ], src)
		return
	}
	switch m.typ {
	case mInvAck:
		if d.busy != bInvAll && d.busy != bEvict {
			x.failProto("InvAck from %d during %s", src, dirFSMName(d))
			return
		}
		d.tAcks--
		if d.tAcks > 0 {
			return
		}
		if d.busy == bEvict {
			x.finishDirEvict(li)
		} else {
			x.finishInvAll(li)
		}
	case mCopyBack:
		if d.busy != bFwdGetS {
			x.failProto("CopyBack from %d during %s", src, dirFSMName(d))
			return
		}
		oldOwner, req := d.owner, d.tReq
		d.hasData, d.val, d.ver = true, m.val, m.ver
		if m.needAck {
			d.dirty = true
		}
		clearTxn(d)
		x.dirSet(li, dS, bNone)
		d.sharers = 1<<oldOwner | 1<<req
		d.owner = noNode
		x.drainDeferred(li)
	case mXferAck:
		if d.busy != bFwdGetX {
			x.failProto("XferAck from %d during %s", src, dirFSMName(d))
			return
		}
		req := d.tReq
		clearTxn(d)
		x.dirSet(li, dO, bNone)
		d.owner, d.ownerDty = req, true
		x.drainDeferred(li)
	case mRecallAck:
		if d.busy != bEvict {
			x.failProto("RecallAck from %d during %s", src, dirFSMName(d))
			return
		}
		if m.hasData {
			d.hasData, d.dirty, d.val, d.ver = true, true, m.val, m.ver
		}
		x.finishDirEvict(li)
	case mWirUpgrAck:
		if d.busy != bWAddSharer {
			x.failProto("WirUpgrAck from %d during %s", src, dirFSMName(d))
			return
		}
		clearTxn(d)
		x.dirSet(li, dW, bNone)
		d.wcount++
		x.drainDeferred(li)
	case mWirDwgrAck:
		if d.busy != bWToS {
			x.failProto("WirDwgrAck from %d during %s", src, dirFSMName(d))
			return
		}
		d.tAckIDs |= 1 << src
		x.maybeFinishWToS(li)
	}
}

func (x *ctx) processMemData(m msg) {
	li := int(m.line)
	d := &x.s.dir[li]
	if !d.exists || d.busy != bFetchMem {
		x.failProto("MemData without a fetch transaction")
		return
	}
	d.hasData, d.dirty, d.val, d.ver = true, false, m.val, m.ver
	req, reqType, reqID := int(d.tReq), d.tReqType, d.tReqID
	clearTxn(d)
	d.busy = bFetchMem // grantFromLLC validates the hop busy:fetch-mem -> DO
	x.grantFromLLC(li, req, reqType, reqID)
	x.drainDeferred(li)
}

func (x *ctx) writebackIfDirty(li int) {
	d := &x.s.dir[li]
	if d.dirty && d.hasData {
		x.send(x.dirNode(), x.mcNode(), msg{typ: mMemWrite, line: byte(li),
			hasData: true, val: d.val, ver: d.ver})
		d.dirty = false
	}
}

// drainDeferred replays puts absorbed while the entry was busy.
func (x *ctx) drainDeferred(li int) {
	d := &x.s.dir[li]
	if len(d.deferred) == 0 {
		return
	}
	pending := d.deferred
	d.deferred = nil
	saved := x.event
	for i, m := range pending {
		if x.viol != nil {
			break
		}
		x.event = mtNames[m.typ]
		if x.s.dir[li].busy != bNone {
			if x.consumeBusyPut(li, int(m.req), m) {
				continue
			}
			dd := &x.s.dir[li]
			dd.deferred = append(append([]msg{m}, dd.deferred...), pending[i+1:]...)
			break
		}
		x.processPut(li, int(m.req), m)
	}
	x.event = saved
}
