// Sensitivity reproduces the Table VI experiment shape: sweep the
// MaxWiredSharers threshold that decides when a line moves to the
// Wireless state, reporting the mean speedup over Baseline and the
// wireless collision probability. Transitioning sooner (threshold 2)
// puts more lines in wireless mode and raises medium contention;
// transitioning later (4, 5) wastes opportunities.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/exp"
)

func main() {
	o := exp.Options{
		Scale: 0.5,
		Apps:  []string{"radiosity", "barnes", "water-spa", "fmm", "raytrace", "canneal"},
	}
	rows, err := exp.Table6(o, []int{2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MaxWiredSharers sensitivity (subset of applications, 64 cores):")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "MaxWiredSharers\tspeedup over Baseline\tcollision probability")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.2fx\t%.2f%%\n", r.MaxWiredSharers, r.Speedup, 100*r.CollisionProb)
	}
	tw.Flush()
}
