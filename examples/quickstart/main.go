// Quickstart: build a 16-core machine, run one application under both
// protocols, and print the headline comparison — the minimal use of the
// public API.
package main

import (
	"fmt"
	"log"

	widir "repro"
)

func main() {
	app, ok := widir.App("radiosity")
	if !ok {
		log.Fatal("quickstart: application not found")
	}
	app = app.Scale(0.5) // keep the demo quick

	cfg := widir.DefaultConfig(64, widir.Baseline)
	cmp, err := widir.Compare(cfg, app, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application:      %s on %d cores\n", cmp.App, cfg.Nodes)
	fmt.Printf("baseline:         %d cycles, %.2f MPKI\n", cmp.Base.Cycles, cmp.Base.MPKI())
	fmt.Printf("widir:            %d cycles, %.2f MPKI\n", cmp.WiDir.Cycles, cmp.WiDir.MPKI())
	fmt.Printf("speedup:          %.2fx (time ratio %.3f)\n", cmp.Speedup(), cmp.TimeRatio())
	fmt.Printf("wireless writes:  %d (S->W transitions: %d, W->S: %d)\n",
		cmp.WiDir.WirelessWrites, cmp.WiDir.SToW, cmp.WiDir.WToS)
	fmt.Printf("collision prob.:  %.2f%%\n", 100*cmp.WiDir.CollisionProb)
	fmt.Printf("energy ratio:     %.3f (WNoC share %.1f%%)\n",
		cmp.WiDir.EnergyPJ/cmp.Base.EnergyPJ, 100*cmp.WiDir.Energy.Share("WNoC"))
}
