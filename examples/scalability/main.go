// Scalability reproduces the Figure 10 experiment shape on a subset of
// applications: speedup of Baseline and WiDir over the 4-core Baseline
// as the core count grows. Up to 16 cores the two protocols track each
// other; at 32 and 64 cores they diverge as wired-mesh traversal costs
// grow and more lines run in wireless mode.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/exp"
)

func main() {
	o := exp.Options{
		Scale: 2.0, // Fig. 10 needs enough total work that 64-way division is meaningful
		Apps:  []string{"radiosity", "barnes", "ocean-nc", "raytrace"},
	}
	pts, err := exp.Fig10(o, []int{4, 8, 16, 32, 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Speedup over the 4-core Baseline (radiosity/barnes/ocean-nc/raytrace mean):")
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "cores\tBaseline\tWiDir\tWiDir advantage")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.2fx\t%.2fx\t%.1f%%\n",
			p.Cores, p.BaseSpeedup, p.WiDirSpeedup,
			100*(p.WiDirSpeedup/p.BaseSpeedup-1))
	}
	tw.Flush()
}
