// Sharingpattern demonstrates the access pattern the paper's
// introduction motivates — a group of cores frequently reading and
// writing one shared variable — with a hand-written instruction source
// instead of the built-in application profiles. It runs the pattern
// under both protocols and shows the wired<->wireless transitions
// WiDir performs transparently.
package main

import (
	"fmt"
	"log"

	widir "repro"
)

// groupSharer is a custom instruction source: every core repeatedly
// reads the shared word and occasionally writes it, with some private
// work in between. Under Baseline every write invalidates all the other
// sharers; under WiDir the line moves to the Wireless state and the
// writes become single-hop broadcast updates.
type groupSharer struct {
	core   int
	rounds int
	step   int
	shared widir.Addr // address of the contended word
	priv   widir.Addr // private region base
}

// Next implements widir.InstrSource.
func (g *groupSharer) Next(prev uint64, prevValid bool) (widir.Instr, bool) {
	if g.step >= g.rounds {
		return widir.Instr{}, false
	}
	g.step++
	switch g.step % 8 {
	case 0:
		// One write in eight accesses: the group's producer role
		// rotates around the cores via the modulo phase.
		if g.step/8%16 == g.core%16 {
			return widir.Instr{Kind: widir.KStore, Addr: g.shared, Value: uint64(g.core)<<32 | uint64(g.step)}, true
		}
		return widir.Instr{Kind: widir.KLoad, Addr: g.shared}, true
	case 3, 6:
		// Private work.
		a := g.priv + widir.Addr(g.step%64)*widir.LineSize
		return widir.Instr{Kind: widir.KStore, Addr: a, Value: uint64(g.step)}, true
	default:
		return widir.Instr{Kind: widir.KLoad, Addr: g.shared}, true
	}
}

func main() {
	const cores = 32
	const rounds = 4000

	for _, p := range []widir.Protocol{widir.Baseline, widir.WiDir} {
		cfg := widir.DefaultConfig(cores, p)
		sources := make([]widir.InstrSource, cores)
		for i := range sources {
			sources[i] = &groupSharer{
				core:   i,
				rounds: rounds,
				shared: 0x1000,
				priv:   0x100000 + widir.Addr(i)*0x10000,
			}
		}
		res, err := widir.RunCustom(cfg, sources)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s cycles=%-8d mpki=%6.2f  wireless-writes=%-5d  S->W=%d W->S=%d\n",
			p, res.Cycles, res.MPKI(), res.WirelessWrites, res.SToW, res.WToS)
	}
}
