// Protocoltrace runs the motivating sharing pattern with per-line
// protocol event tracing enabled, so the wired->wireless->wired
// lifecycle of one contended line can be read directly: the wired MESI
// handoffs, the S->W upgrade (BrWirUpgr + tone), the stream of WirUpd
// broadcasts, and the eventual decay back to the wired protocol.
//
// The trace prints to stderr; pipe it through `head` to see the opening
// transitions:
//
//	go run ./examples/protocoltrace 2>&1 | head -60
package main

import (
	"fmt"
	"log"
	"os"

	widir "repro"
	"repro/internal/addrspace"
	"repro/internal/obs"
)

// phases is a custom source driving one line through the full protocol
// lifecycle: a group-sharing phase (the line should go wireless), then
// a private phase (the line should decay back to wired).
type phases struct {
	core  int
	step  int
	total int
}

const tracedAddr = widir.Addr(0x2000)

// Next implements widir.InstrSource.
func (p *phases) Next(prev uint64, prevValid bool) (widir.Instr, bool) {
	if p.step >= p.total {
		return widir.Instr{}, false
	}
	p.step++
	switch {
	case p.step < p.total/2:
		// Phase 1: everyone reads the shared word; core (step%8) writes.
		if p.step%12 == 0 && p.step/12%8 == p.core {
			return widir.Instr{Kind: widir.KStore, Addr: tracedAddr, Value: uint64(p.step)}, true
		}
		return widir.Instr{Kind: widir.KLoad, Addr: tracedAddr}, true
	default:
		// Phase 2: private work only; the traced line decays out of W.
		a := widir.Addr(0x100000) + widir.Addr(p.core)*0x10000 + widir.Addr(p.step%32)*widir.LineSize
		return widir.Instr{Kind: widir.KLoad, Addr: a}, true
	}
}

func main() {
	line := addrspace.LineOf(addrspace.Addr(tracedAddr))
	fmt.Printf("tracing line %#x (addr %#x); protocol events follow on stderr\n",
		uint64(line), uint64(tracedAddr))

	const cores = 16
	cfg := widir.DefaultConfig(cores, widir.WiDir)
	cfg.LineLog = &obs.LineLog{Line: line, W: os.Stderr}
	sources := make([]widir.InstrSource, cores)
	for i := range sources {
		sources[i] = &phases{core: i, total: 600}
	}
	res, err := widir.RunCustom(cfg, sources)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done: %d cycles, S->W=%d, wireless writes=%d, W->S=%d, self-invalidations=%d\n",
		res.Cycles, res.SToW, res.WirelessWrites, res.WToS, res.SelfInvalidations)
}
