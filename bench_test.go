// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VI). Each benchmark runs the corresponding
// experiment from internal/exp — the same code cmd/widir-experiments
// uses — and reports the headline quantity as a custom metric. On the
// first iteration the full rows/series are printed, so
//
//	go test -bench=. -benchtime=1x
//
// reproduces the paper's evaluation tables. Benchmarks default to a
// reduced workload scale so the whole suite completes in minutes; set
// the scale to 1.0 via -widir.scale for full runs.
package widir_test

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	widir "repro"
	"repro/internal/coherence"
	"repro/internal/exp"
	"repro/internal/stats"
	"repro/internal/wireless"
)

var (
	benchScale    = flag.Float64("widir.scale", 0.25, "workload scale for the evaluation benchmarks")
	benchParallel = flag.Int("widir.parallel", 0, "simulation worker-pool width (0 = GOMAXPROCS, 1 = serial)")
)

// benchRunner is shared across every benchmark in the suite so the
// memo deduplicates the canonical runs between tables, exactly like
// `widir-experiments -exp all`. Flags are only parsed once benchmarks
// run, hence the lazy construction.
var (
	benchRunnerOnce sync.Once
	benchRunnerVal  *exp.Runner
)

func benchRunner() *exp.Runner {
	benchRunnerOnce.Do(func() { benchRunnerVal = exp.NewRunner(*benchParallel) })
	return benchRunnerVal
}

func opts() exp.Options {
	return exp.Options{Cores: 64, Scale: *benchScale, Seed: 1, Runner: benchRunner()}
}

var printOnce sync.Map

func printFirst(b *testing.B, key string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fn()
	}
}

// BenchmarkMotivationSharing reproduces the §II-C measurements: the
// mean number of sharers a wireless write updates, and the fraction of
// updates a sharer re-reads before the next write arrives.
func BenchmarkMotivationSharing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := exp.Motivation(opts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "motivation", func() { exp.PrintMotivation(os.Stdout, m) })
		b.ReportMetric(m.MeanSharersPerWrite, "sharers/write")
		b.ReportMetric(100*m.ReReadFraction, "reread%")
	}
}

// BenchmarkTable4MPKI reproduces Table IV: Baseline L1 MPKI per app.
func BenchmarkTable4MPKI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(opts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table4", func() { exp.PrintTable4(os.Stdout, rows) })
		var mean float64
		for _, r := range rows {
			mean += r.MPKI
		}
		b.ReportMetric(mean/float64(len(rows)), "mean-MPKI")
	}
}

// BenchmarkFig5SharerHistogram reproduces Figure 5: the distribution of
// sharers updated per wireless write (bins <=5 ... 50+).
func BenchmarkFig5SharerHistogram(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Fig5(opts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "fig5", func() { exp.PrintFig5(os.Stdout, rows) })
		avg := exp.Fig5Average(rows)
		b.ReportMetric(100*avg.Fractions[0], "few(<=5)%")
		b.ReportMetric(100*avg.Fractions[4], "many(50+)%")
	}
}

// pairRows computes the shared Baseline/WiDir pair runs used by the
// Fig. 6/7/9 benchmarks (cached across them).
var (
	pairsOnce sync.Once
	pairsRows []exp.AppRow
	pairsErr  error
)

func benchPairs(b *testing.B) []exp.AppRow {
	pairsOnce.Do(func() { pairsRows, pairsErr = exp.RunPairs(opts()) })
	if pairsErr != nil {
		b.Fatal(pairsErr)
	}
	return pairsRows
}

// BenchmarkFig6MPKI reproduces Figure 6: normalized L1 MPKI (the paper
// reports an average reduction of ~15%).
func BenchmarkFig6MPKI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig6(benchPairs(b))
		printFirst(b, "fig6", func() { exp.PrintFig6(os.Stdout, rows) })
		var norms []float64
		for _, r := range rows {
			norms = append(norms, r.Normalized)
		}
		b.ReportMetric(stats.ArithMean(norms), "norm-MPKI")
	}
}

// BenchmarkFig7MemLatency reproduces Figure 7: normalized overall
// latency of memory operations (the paper reports ~-35%).
func BenchmarkFig7MemLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig7(benchPairs(b))
		printFirst(b, "fig7", func() { exp.PrintFig7(os.Stdout, rows) })
		var norms []float64
		for _, r := range rows {
			norms = append(norms, r.Normalized)
		}
		b.ReportMetric(stats.ArithMean(norms), "norm-memlat")
	}
}

// BenchmarkTable5HopsPerLeg reproduces Table V: the hops-per-leg
// distribution of wired-mesh messages in the 64-core Baseline (the
// paper reports >50% of messages needing 6+ hops).
func BenchmarkTable5HopsPerLeg(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := exp.Table5(opts())
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table5", func() { exp.PrintTable5(os.Stdout, t) })
		sixPlus := t.Fractions[2] + t.Fractions[3] + t.Fractions[4]
		b.ReportMetric(100*sixPlus, "hops6+%")
	}
}

// BenchmarkFig8ExecutionTime reproduces Figure 8: normalized execution
// time at 64, 32 and 16 cores (the paper reports average reductions of
// 22%, 11% and 4%).
func BenchmarkFig8ExecutionTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, cores := range []int{64, 32, 16} {
			o := opts()
			o.Cores = cores
			rows, err := exp.RunPairs(o)
			if err != nil {
				b.Fatal(err)
			}
			f8 := exp.Fig8(rows)
			cores := cores
			printFirst(b, "fig8"+string(rune('0'+cores/16)), func() { exp.PrintFig8(os.Stdout, cores, f8) })
			var ratios []float64
			for _, r := range f8 {
				ratios = append(ratios, r.TimeRatio)
			}
			switch cores {
			case 64:
				b.ReportMetric(stats.ArithMean(ratios), "ratio64")
			case 32:
				b.ReportMetric(stats.ArithMean(ratios), "ratio32")
			case 16:
				b.ReportMetric(stats.ArithMean(ratios), "ratio16")
			}
		}
	}
}

// BenchmarkFig9Energy reproduces Figure 9: normalized energy and the
// WNoC's share of it (the paper reports -21% and a 5.9% share).
func BenchmarkFig9Energy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig9(benchPairs(b))
		printFirst(b, "fig9", func() { exp.PrintFig9(os.Stdout, rows) })
		var norms, wnoc []float64
		for _, r := range rows {
			norms = append(norms, r.Normalized)
			wnoc = append(wnoc, r.WNoCShare)
		}
		b.ReportMetric(stats.ArithMean(norms), "norm-energy")
		b.ReportMetric(100*stats.ArithMean(wnoc), "wnoc%")
	}
}

// BenchmarkFig10Scalability reproduces Figure 10: speedup over the
// 4-core Baseline under strong scaling, on the high-sharing subset the
// divergence is clearest for.
func BenchmarkFig10Scalability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := opts()
		o.Scale = *benchScale * 4 // strong scaling needs enough total work
		o.Apps = []string{"radiosity", "barnes", "ocean-nc", "raytrace", "water-spa", "fmm"}
		pts, err := exp.Fig10(o, []int{4, 16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "fig10", func() { exp.PrintFig10(os.Stdout, pts) })
		last := pts[len(pts)-1]
		b.ReportMetric(last.WiDirSpeedup/last.BaseSpeedup, "divergence64")
	}
}

// BenchmarkTable6Sensitivity reproduces Table VI: the MaxWiredSharers
// sweep (the paper reports speedups of 1.22/1.43/1.38/1.31x and
// collision probabilities of 6.93/3.14/2.24/1.70% for thresholds
// 2/3/4/5).
func BenchmarkTable6Sensitivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := opts()
		o.Apps = []string{"radiosity", "barnes", "water-spa", "raytrace", "fmm", "ocean-nc", "canneal", "lu-c"}
		rows, err := exp.Table6(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "table6", func() { exp.PrintTable6(os.Stdout, rows) })
		for _, r := range rows {
			if r.MaxWiredSharers == 3 {
				b.ReportMetric(r.Speedup, "speedup@3")
				b.ReportMetric(100*r.CollisionProb, "collprob@3%")
			}
		}
	}
}

// ----------------------------------------------------------------------
// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationDirScheme compares the Baseline's two
// limited-pointer overflow schemes (Dir_iB broadcast bit vs Dir_iCV_4
// coarse vector) on a widely-shared workload — the §II-C discussion.
func BenchmarkAblationDirScheme(b *testing.B) {
	b.ReportAllocs()
	app, _ := widir.App("radiosity")
	app = app.Scale(*benchScale)
	for i := 0; i < b.N; i++ {
		cfgB := widir.DefaultConfig(64, widir.Baseline)
		rB, err := widir.Run(cfgB, app, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfgCV := cfgB
		cfgCV.DirScheme = coherence.DirCV
		cfgCV.CoarseRegion = 4
		rCV, err := widir.Run(cfgCV, app, 1)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "abl-dir", func() {
			fmt.Printf("Ablation Dir_iB vs Dir_iCV_4 (radiosity, 64 cores):\n")
			fmt.Printf("  Dir_iB:    %d cycles, %d invalidations\n", rB.Cycles, rB.Invalidations)
			fmt.Printf("  Dir_iCV_4: %d cycles, %d invalidations\n", rCV.Cycles, rCV.Invalidations)
		})
		b.ReportMetric(float64(rCV.Invalidations)/float64(rB.Invalidations), "cv-inv-ratio")
		b.ReportMetric(float64(rCV.Cycles)/float64(rB.Cycles), "cv-time-ratio")
	}
}

// BenchmarkAblationMAC compares WiDir over the paper's BRS MAC against
// a collision-free token-passing MAC (§VII: "practically any other
// WNoC MAC protocol could be used").
func BenchmarkAblationMAC(b *testing.B) {
	b.ReportAllocs()
	app, _ := widir.App("radiosity")
	app = app.Scale(*benchScale)
	for i := 0; i < b.N; i++ {
		cfgBRS := widir.DefaultConfig(64, widir.WiDir)
		rBRS, err := widir.Run(cfgBRS, app, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfgTok := cfgBRS
		cfgTok.MAC = wireless.MACToken
		rTok, err := widir.Run(cfgTok, app, 1)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, "abl-mac", func() {
			fmt.Printf("Ablation BRS vs Token MAC (radiosity WiDir, 64 cores):\n")
			fmt.Printf("  BRS:   %d cycles, coll.prob %.1f%%\n", rBRS.Cycles, 100*rBRS.CollisionProb)
			fmt.Printf("  Token: %d cycles, coll.prob %.1f%%\n", rTok.Cycles, 100*rTok.CollisionProb)
		})
		b.ReportMetric(float64(rTok.Cycles)/float64(rBRS.Cycles), "token-time-ratio")
	}
}

// BenchmarkAblationUpdateCount sweeps WiDir's UpdateCount decay
// threshold (the paper's 2-bit counter, §III-B2).
func BenchmarkAblationUpdateCount(b *testing.B) {
	b.ReportAllocs()
	app, _ := widir.App("barnes")
	app = app.Scale(*benchScale)
	for i := 0; i < b.N; i++ {
		var lines []string
		for _, max := range []int{1, 3, 6} {
			cfg := widir.DefaultConfig(64, widir.WiDir)
			cfg.UpdateCountMax = max
			r, err := widir.Run(cfg, app, 1)
			if err != nil {
				b.Fatal(err)
			}
			lines = append(lines, fmt.Sprintf("  threshold %d: %d cycles, %d self-invalidations, %d W->S",
				max, r.Cycles, r.SelfInvalidations, r.WToS))
			if max == 3 {
				b.ReportMetric(float64(r.SelfInvalidations), "selfinv@3")
			}
		}
		printFirst(b, "abl-uc", func() {
			fmt.Println("Ablation UpdateCount threshold (barnes WiDir, 64 cores):")
			for _, l := range lines {
				fmt.Println(l)
			}
		})
	}
}
