package widir_test

import (
	"testing"

	widir "repro"
)

func TestPublicAPIRun(t *testing.T) {
	app, ok := widir.App("fmm")
	if !ok {
		t.Fatal("fmm missing")
	}
	app = app.Scale(0.05)
	cfg := widir.DefaultConfig(8, widir.WiDir)
	res, err := widir.Run(cfg, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Retired == 0 {
		t.Fatal("empty result")
	}
}

func TestCompare(t *testing.T) {
	app, _ := widir.App("radiosity")
	app = app.Scale(0.05)
	cfg := widir.DefaultConfig(16, widir.Baseline)
	cmp, err := widir.Compare(cfg, app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.App != "radiosity" {
		t.Fatal("app name lost")
	}
	if cmp.Base.Protocol != widir.Baseline || cmp.WiDir.Protocol != widir.WiDir {
		t.Fatal("protocols not forced")
	}
	if cmp.TimeRatio() <= 0 || cmp.Speedup() <= 0 {
		t.Fatal("ratios not computed")
	}
	got := cmp.TimeRatio() * cmp.Speedup()
	if got < 0.999 || got > 1.001 {
		t.Fatalf("ratio*speedup = %v, want 1", got)
	}
}

func TestAppCatalog(t *testing.T) {
	if len(widir.Apps()) != 20 || len(widir.AppNames()) != 20 {
		t.Fatal("catalog incomplete")
	}
	if _, ok := widir.App("not-an-app"); ok {
		t.Fatal("phantom app")
	}
}

// pingPong is a custom source: core 0 stores a token, core 1 reads it
// back, demonstrating RunCustom and the exported instruction types.
type pingPong struct {
	core  int
	round int
}

func (p *pingPong) Next(prev uint64, prevValid bool) (widir.Instr, bool) {
	if p.round >= 64 {
		return widir.Instr{}, false
	}
	p.round++
	addr := widir.Addr(0x1000)
	if p.core == 0 {
		return widir.Instr{Kind: widir.KStore, Addr: addr, Value: uint64(p.round)}, true
	}
	return widir.Instr{Kind: widir.KLoad, Addr: addr}, true
}

func TestRunCustom(t *testing.T) {
	cfg := widir.DefaultConfig(2, widir.Baseline)
	res, err := widir.RunCustom(cfg, []widir.InstrSource{&pingPong{core: 0}, &pingPong{core: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != 128 {
		t.Fatalf("retired = %d, want 128", res.Retired)
	}
}

func TestRunCustomSourceMismatch(t *testing.T) {
	cfg := widir.DefaultConfig(2, widir.Baseline)
	if _, err := widir.RunCustom(cfg, []widir.InstrSource{&pingPong{}}); err == nil {
		t.Fatal("source count mismatch accepted")
	}
}

func TestNewSystemExposed(t *testing.T) {
	cfg := widir.DefaultConfig(2, widir.WiDir)
	sys, err := widir.NewSystem(cfg, []widir.InstrSource{&pingPong{core: 0}, &pingPong{core: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(10)
	if sys.Cycle() != 10 {
		t.Fatal("Step broken through the public API")
	}
}
