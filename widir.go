// Package widir is a from-scratch reproduction of "WiDir: A
// Wireless-Enabled Directory Cache Coherence Protocol" (HPCA 2021): a
// cycle-level manycore simulator whose memory hierarchy runs either a
// conventional Dir_3B MESI directory protocol over a wired 2D-mesh NoC
// (Baseline), or WiDir, which augments it with a Wireless Shared (W)
// state carried by an on-chip wireless network with a BRS MAC, a tone
// acknowledgment channel, and selective data-channel jamming.
//
// The package exposes the machine configuration, the synthesized
// SPLASH-3/PARSEC application profiles of the paper's Table IV, and
// helpers to run single simulations or Baseline-vs-WiDir comparisons:
//
//	cfg := widir.DefaultConfig(64, widir.WiDir)
//	app, _ := widir.App("radiosity")
//	res, err := widir.Run(cfg, app, 1)
//
// The experiment harness that regenerates every table and figure of
// the paper's evaluation lives in cmd/widir-experiments; the same
// computations back this repository's benchmarks.
package widir

import (
	"repro/internal/addrspace"
	"repro/internal/coherence"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Addr is a byte-granular physical address in the simulated machine.
type Addr = addrspace.Addr

// LineSize is the simulated cache line size in bytes.
const LineSize = addrspace.LineSize

// Protocol selects the coherence protocol a machine runs.
type Protocol = coherence.Protocol

// The two protocols under evaluation.
const (
	Baseline = coherence.Baseline
	WiDir    = coherence.WiDir
)

// Config describes one simulated manycore (Table III defaults via
// DefaultConfig).
type Config = machine.Config

// Result summarizes one run: cycles, MPKI, memory-stall attribution,
// wireless statistics, the Fig. 5 sharer histogram, the Table V hop
// histogram, and the Fig. 9 energy breakdown.
type Result = machine.Result

// AppProfile describes one synthesized application (Table IV).
type AppProfile = workload.Profile

// Instr and InstrSource let callers drive a machine with custom
// instruction streams instead of the built-in application profiles.
type (
	Instr       = cpu.Instr
	InstrSource = cpu.InstrSource
)

// Instruction kinds for custom sources.
const (
	KCompute = cpu.KCompute
	KLoad    = cpu.KLoad
	KStore   = cpu.KStore
	KRMW     = cpu.KRMW
)

// RMW operation kinds for custom sources.
const (
	RMWTestAndSet  = coherence.RMWTestAndSet
	RMWExchange    = coherence.RMWExchange
	RMWFetchAdd    = coherence.RMWFetchAdd
	RMWCompareSwap = coherence.RMWCompareSwap
)

// TraceEvent is one cycle-stamped observability event (see
// internal/obs for the vocabulary and export helpers).
type TraceEvent = obs.Event

// TraceSink receives every TraceEvent a traced machine emits. Attach
// one via Config.Trace before building the system; a nil sink (the
// default) keeps the simulator on its allocation-free fast path. Set
// Config.LineLog to additionally stream the legacy single-line
// protocol dump (the old widirsim -trace-line output) for one cache
// line.
type TraceSink = obs.Sink

// NewTraceRing returns a bounded in-memory TraceSink holding the most
// recent capacity events (see obs.RingSink for draining and export).
func NewTraceRing(capacity int) *obs.RingSink { return obs.NewRingSink(capacity) }

// DefaultConfig returns the paper's Table III machine with the given
// core count and protocol: 4-issue out-of-order cores (ROB 180, LSQ
// 64, write buffer 64), 64 KB 2-way L1s, 512 KB LLC slices with Dir_3B
// directories, a 2D mesh at 1 cycle/hop with 128-bit links, four
// memory controllers at 80-cycle round trip and, for WiDir, the 20
// Gb/s data channel (4+1 cycles per packet) with MaxWiredSharers=3.
func DefaultConfig(nodes int, p Protocol) Config {
	return machine.DefaultConfig(nodes, p)
}

// Apps returns the 20 evaluated application profiles in Table IV order.
func Apps() []AppProfile { return workload.Apps() }

// App returns the named application profile.
func App(name string) (AppProfile, bool) { return workload.ByName(name) }

// AppNames returns the application names in Table IV order.
func AppNames() []string { return workload.Names() }

// Run builds a machine for cfg, synthesizes the application's
// per-core instruction streams with the given seed, executes the
// machine to completion, and returns the measurements.
func Run(cfg Config, app AppProfile, seed uint64) (*Result, error) {
	sys, err := machine.NewSystem(cfg, workload.Program(app, cfg.Nodes, seed))
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// RunCustom executes a machine fed by caller-provided instruction
// sources (len(sources) must equal cfg.Nodes).
func RunCustom(cfg Config, sources []InstrSource) (*Result, error) {
	sys, err := machine.NewSystem(cfg, sources)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// NewSystem exposes the assembled machine for callers that want to
// drive or inspect the simulation directly (see internal/machine for
// the System API used by the tests).
func NewSystem(cfg Config, sources []InstrSource) (*machine.System, error) {
	return machine.NewSystem(cfg, sources)
}

// Comparison holds a Baseline/WiDir pair for one application.
type Comparison struct {
	App   string
	Base  *Result
	WiDir *Result
}

// TimeRatio returns WiDir execution time normalized to Baseline
// (Fig. 8's metric; < 1 means WiDir is faster).
func (c *Comparison) TimeRatio() float64 {
	if c.Base.Cycles == 0 {
		return 0
	}
	return float64(c.WiDir.Cycles) / float64(c.Base.Cycles)
}

// Speedup returns Baseline time / WiDir time.
func (c *Comparison) Speedup() float64 {
	if c.WiDir.Cycles == 0 {
		return 0
	}
	return float64(c.Base.Cycles) / float64(c.WiDir.Cycles)
}

// Compare runs the application under both protocols with otherwise
// identical configuration and seed.
func Compare(cfg Config, app AppProfile, seed uint64) (*Comparison, error) {
	bcfg := cfg
	bcfg.Protocol = Baseline
	wcfg := cfg
	wcfg.Protocol = WiDir
	base, err := Run(bcfg, app, seed)
	if err != nil {
		return nil, err
	}
	wd, err := Run(wcfg, app, seed)
	if err != nil {
		return nil, err
	}
	return &Comparison{App: app.Name, Base: base, WiDir: wd}, nil
}
